package bench

// Bracket microbenchmarks: the cost of a StartRead/EndRead or
// StartWrite/EndWrite pair through the runtime, in the three regimes
// that matter for the paper's Table 4 story. A hit bracket (valid
// cached copy, no coherence action) is the overwhelmingly common case
// in E1/E2 steady state and the case the runtime's fast path targets; a
// hit under churn pits the hit loop against a pump saturated with
// incoming protocol traffic, which on a single runtime lock starves the
// application thread; a miss pays a full home round trip. The same
// measurements back the committed BENCH_bracket.json artifact
// (`acebench -exp bracket` or `make bench`).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// BracketResult is one bracket measurement, JSON-shaped for
// BENCH_bracket.json.
type BracketResult struct {
	Name      string  `json:"name"` // e.g. "hit/churn"
	Procs     int     `json:"procs"`
	Ops       int     `json:"ops"` // bracket pairs measured
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	NsPerOp   float64 `json:"ns_per_op"`
	// ChurnOps counts the update writes the flooding processors shipped
	// to processor 0's pump while the hit loop ran (hit/churn only) —
	// evidence the coherence engine was saturated for the whole window.
	ChurnOps int64 `json:"churn_ops,omitempty"`
	// AppCPUSeconds is the CPU time the measuring application thread
	// itself consumed during the window (hit/churn only, Linux only).
	// Comparing it against Seconds separates the two ways a runtime can
	// lose hit throughput under churn: doing more work per bracket
	// (CPU/op rises) versus losing the processor to the pump while parked
	// on a shared lock (wall/op rises, CPU/op does not). Only the second
	// is visible on a host with a single hardware context, and only the
	// first costs anything there — see DESIGN.md.
	AppCPUSeconds float64 `json:"app_cpu_seconds,omitempty"`
}

// BracketReport is the BENCH_bracket.json document.
type BracketReport struct {
	Generated  string          `json:"generated_by"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []BracketResult `json:"results"`
	// Baseline, when present, carries the same measurements taken at the
	// pre-fast-path commit, so the artifact itself documents the delta.
	Baseline []BracketResult `json:"pre_fastpath_baseline,omitempty"`
}

// bracketHitSolo measures ops read-bracket pairs on a home region with a
// quiet pump: the pure per-bracket runtime overhead.
func bracketHitSolo(ops int) (time.Duration, error) {
	cl, err := core.NewCluster(core.Options{Procs: 1})
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	var el time.Duration
	err = cl.Run(func(p *core.Proc) error {
		id := p.GMalloc(p.DefaultSpace(), 64)
		r := p.Map(id)
		start := time.Now()
		for i := 0; i < ops; i++ {
			p.StartRead(r)
			p.EndRead(r)
		}
		el = time.Since(start)
		return nil
	})
	return el, err
}

// Churn workload shape. The flood regions are realistically sized:
// applying a multi-KB update means the pump holds whatever lock protects
// the region for the full payload copy, so a runtime that serializes
// handler work against the application thread's brackets stalls the hit
// loop for microseconds at a time.
const (
	churnRegionBytes = 16 * 1024
	// churnFloodBatch is how many one-way updates a flooder ships
	// between throttling round trips. The fabric's mailboxes are
	// unbounded, so the flood must bound its own backlog: per-pair FIFO
	// ordering means a round trip to the home is served only after the
	// batch preceding it has been dispatched, capping the queue at
	// roughly one batch per flooder.
	churnFloodBatch = 64
	// churnWindow is the measured interval. The churn workload is fixed
	// in time, not in operations: the pump's progress through the flood
	// is not part of the metric, only the hit throughput the application
	// thread sustains while the flood lasts. (A fixed-operation design
	// cannot work on a host with fewer hardware contexts than emulated
	// processors: with both sides' work fixed, total wall time is just
	// total CPU consumed, and locking discipline only reorders that sum.)
	churnWindow = 300 * time.Millisecond
)

// bracketHitChurn measures the hit read-bracket throughput processor 0's
// application thread sustains over a fixed window while processor 0's
// pump is saturated with coherence work. Processor 1 writes a
// churnRegionBytes region of an "update" space homed at processor 0 in a
// tight loop: remote EndWrite in an update protocol ships the payload
// home one-way, so the flooder never blocks on round trips. Processors
// 2..n-1 register as sharers of that region and then park in the closing
// barrier — their only role is fan-out: every incoming update makes
// processor 0's pump apply the payload and re-send it to every sharer,
// multiplying the work (and, on a single-lock runtime, the lock hold
// time) per flooded byte. The hit region lives in a different space
// entirely — on a runtime with one lock per processor the unrelated
// flood still stalls every bracket, while decoupled engines leave the
// hit loop untouched. Returns the hit ops completed, the window's exact
// elapsed wall and application-thread CPU time, and the number of
// updates shipped.
func bracketHitChurn(procs int, window time.Duration) (int, time.Duration, time.Duration, int64, error) {
	return bracketHitChurnOpts(core.Options{Procs: procs, Registry: proto.NewRegistry()}, window)
}

// bracketHitChurnOpts is the churn measurement body, parameterized on
// the full cluster options so the scaling sweep can run it with sharded
// dispatch (scale.go).
func bracketHitChurnOpts(opts core.Options, window time.Duration) (int, time.Duration, time.Duration, int64, error) {
	procs := opts.Procs
	if procs < 3 {
		return 0, 0, 0, 0, fmt.Errorf("bench: bracket churn needs >=3 procs, got %d", procs)
	}
	cl, err := core.NewCluster(opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cl.Close()
	var (
		hits  int
		el    time.Duration
		cpuT  time.Duration
		stop  atomic.Bool
		flood atomic.Int64
	)
	err = cl.Run(func(p *core.Proc) error {
		upd, err := p.NewSpace("update")
		if err != nil {
			return err
		}
		// ids[0]: the measured hit region (default space, 64 B).
		// ids[1]: the flood region (upd space, 16 KB).
		// ids[2]: the flooder's throttle sentinel (default space, 64 B).
		// All homed at processor 0.
		var ids []core.RegionID
		if p.ID() == 0 {
			ids = []core.RegionID{
				p.GMalloc(p.DefaultSpace(), 64),
				p.GMalloc(upd, churnRegionBytes),
				p.GMalloc(p.DefaultSpace(), 64),
			}
		}
		ids = p.BroadcastIDs(0, ids)
		switch p.ID() {
		case 0:
			r := p.Map(ids[0])
			// Pin the measuring goroutine to its OS thread so the thread
			// CPU clock below reads the hit loop's own consumption.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			p.GlobalBarrier()
			start := time.Now()
			cpu0 := threadCPU()
			n := 0
			for {
				p.StartRead(r)
				p.EndRead(r)
				n++
				if n&255 == 0 && time.Since(start) >= window {
					break
				}
			}
			cpuT = threadCPU() - cpu0
			el = time.Since(start)
			hits = n
			stop.Store(true)
			p.Barrier(upd) // collective: the flooder drains in-flight updates
			p.GlobalBarrier()
		case 1:
			fr := p.Map(ids[1])
			sentinel := p.Map(ids[2])
			// Prime a valid copy so steady-state write brackets are local
			// and EndWrite alone carries the update home.
			p.StartRead(fr)
			p.EndRead(fr)
			p.GlobalBarrier()
			for !stop.Load() {
				for i := 0; i < churnFloodBatch; i++ {
					p.StartWrite(fr)
					fr.Data[0]++
					p.EndWrite(fr)
				}
				flood.Add(churnFloodBatch)
				// Bound the backlog: this round trip through processor
				// 0's pump is served only after the batch above
				// (per-pair FIFO).
				p.StartRead(sentinel)
				p.EndRead(sentinel)
				if !p.DropCopy(sentinel) {
					return fmt.Errorf("bench: bracket churn: sentinel copy not droppable")
				}
			}
			p.Barrier(upd)
			p.GlobalBarrier()
		default:
			// Register as a sharer of the flood region, then park. The
			// application thread spends the window blocked in the
			// barrier; only the pump works, applying the home's pushes.
			fr := p.Map(ids[1])
			p.StartRead(fr)
			p.EndRead(fr)
			p.GlobalBarrier()
			p.Barrier(upd)
			p.GlobalBarrier()
		}
		return nil
	})
	return hits, el, cpuT, flood.Load(), err
}

// rusageThread is Linux's RUSAGE_THREAD: resource usage of the calling
// thread only (the syscall package exports just RUSAGE_SELF/CHILDREN).
const rusageThread = 1

// threadCPU returns the calling thread's consumed CPU time (user +
// system). The caller must be pinned with runtime.LockOSThread for the
// reading to mean anything. Falls back to zero (disabling CPU
// accounting) if the platform refuses RUSAGE_THREAD.
func threadCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) time.Duration {
		return time.Duration(t.Sec)*time.Second + time.Duration(t.Usec)*time.Microsecond
	}
	return tv(ru.Utime) + tv(ru.Stime)
}

// bracketMiss measures ops read-bracket pairs that each pay a full home
// round trip: the remote processor drops its clean copy after every
// section, so the next StartRead fetches again.
func bracketMiss(ops int) (time.Duration, error) {
	cl, err := core.NewCluster(core.Options{Procs: 2})
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	var el time.Duration
	err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		var id core.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 64)
		}
		id = p.BroadcastID(0, id)
		if p.ID() == 0 {
			p.GlobalBarrier() // peers mapped
			p.GlobalBarrier() // measurement done
			return nil
		}
		r := p.Map(id)
		p.GlobalBarrier()
		start := time.Now()
		for i := 0; i < ops; i++ {
			p.StartRead(r)
			p.EndRead(r)
			if !p.DropCopy(r) {
				return fmt.Errorf("bench: bracket miss: copy not droppable")
			}
		}
		el = time.Since(start)
		p.GlobalBarrier()
		return nil
	})
	return el, err
}

// bracketReps is how many times each fixed-work bracket measurement
// runs; the best run is reported (cf. fabricReps). The fixed-time
// hit/churn measurement runs churnReps times and reports the median.
const (
	bracketReps = 3
	churnReps   = 5
)

// MeasureBracket runs the standard bracket measurement suite at the
// host's native GOMAXPROCS and returns the per-benchmark best of three
// runs.
//
// The cluster is emulated in-process, so each processor's application
// thread and pump are plain goroutines sharing whatever hardware
// contexts the host offers. That is deliberately left alone: on a
// multicore host a locked bracket pays real cache-line and lock
// contention against the pump, and on a single-context host every park
// inside a locked bracket surrenders the processor to a pump with a
// standing backlog until the scheduler circles back. Both are costs the
// lock-free fast path exists to remove; pinning GOMAXPROCS to some
// other value would hide one of them.
func MeasureBracket(procs, hitOps, missOps int) ([]BracketResult, error) {
	mk := func(name string, nProcs, ops int, el time.Duration, churn int64) BracketResult {
		return BracketResult{
			Name: name, Procs: nProcs, Ops: ops,
			Seconds:   el.Seconds(),
			OpsPerSec: float64(ops) / el.Seconds(),
			NsPerOp:   float64(el.Nanoseconds()) / float64(ops),
			ChurnOps:  churn,
		}
	}
	var out []BracketResult

	var best time.Duration
	for i := 0; i < bracketReps; i++ {
		el, err := bracketHitSolo(hitOps)
		if err != nil {
			return nil, fmt.Errorf("hit/solo: %w", err)
		}
		if best == 0 || el < best {
			best = el
		}
	}
	out = append(out, mk("hit/solo", 1, hitOps, best, 0))

	// hit/churn fixes the churn window in time and measures the hit rate
	// the application thread sustains inside it. Unlike the fixed-work
	// benchmarks, where the best run is the least-disturbed one, here the
	// interference is the point and a "best" pick would just reward the
	// repetition whose scheduling happened to starve the flood — so the
	// median-rate repetition of churnReps is reported instead.
	type churnRep struct {
		hits     int
		el, cpu  time.Duration
		floodOps int64
	}
	reps := make([]churnRep, 0, churnReps)
	for i := 0; i < churnReps; i++ {
		h, el, cpu, fl, err := bracketHitChurn(procs, churnWindow)
		if err != nil {
			return nil, fmt.Errorf("hit/churn: %w", err)
		}
		reps = append(reps, churnRep{h, el, cpu, fl})
	}
	sort.Slice(reps, func(i, j int) bool {
		return float64(reps[i].hits)/reps[i].el.Seconds() < float64(reps[j].hits)/reps[j].el.Seconds()
	})
	med := reps[len(reps)/2]
	churn := mk("hit/churn", procs, med.hits, med.el, med.floodOps)
	churn.AppCPUSeconds = med.cpu.Seconds()
	out = append(out, churn)

	// A miss is a full home round trip: two scheduler handoffs per op
	// when the host has fewer hardware contexts than goroutines. Each
	// cluster settles into a fast or slow handoff pattern for its whole
	// run, so the best of churnReps freshly created clusters estimates
	// the protocol's round-trip cost rather than scheduling luck.
	best = 0
	for i := 0; i < churnReps; i++ {
		el, err := bracketMiss(missOps)
		if err != nil {
			return nil, fmt.Errorf("miss: %w", err)
		}
		if best == 0 || el < best {
			best = el
		}
	}
	out = append(out, mk("miss", 2, missOps, best, 0))
	return out, nil
}

// WriteBracketReport runs MeasureBracket and writes the JSON document.
// baseline, when non-nil, is embedded for before/after comparison.
func WriteBracketReport(w io.Writer, procs, hitOps, missOps int, baseline []BracketResult) (BracketReport, error) {
	res, err := MeasureBracket(procs, hitOps, missOps)
	if err != nil {
		return BracketReport{}, err
	}
	rep := BracketReport{
		Generated:  "acebench -exp bracket",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    res,
		Baseline:   baseline,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatBracket renders bracket results (and an optional baseline) as a
// table with a speedup column.
func FormatBracket(res, baseline []BracketResult) string {
	base := map[string]BracketResult{}
	for _, b := range baseline {
		base[b.Name] = b
	}
	var out string
	out += fmt.Sprintf("%-12s %6s %10s %14s %12s %12s %12s %8s\n", "benchmark", "procs", "ops", "ops/sec", "ns/op", "cpu ns/op", "churn ops", "speedup")
	for _, r := range res {
		sp := "-"
		if b, ok := base[r.Name]; ok && b.OpsPerSec > 0 {
			sp = fmt.Sprintf("%.2fx", r.OpsPerSec/b.OpsPerSec)
		}
		cpu := "-"
		if r.AppCPUSeconds > 0 {
			cpu = fmt.Sprintf("%.1f", r.AppCPUSeconds*1e9/float64(r.Ops))
		}
		out += fmt.Sprintf("%-12s %6d %10d %14.0f %12.1f %12s %12d %8s\n", r.Name, r.Procs, r.Ops, r.OpsPerSec, r.NsPerOp, cpu, r.ChurnOps, sp)
	}
	return out
}
