package bench

// Session-gateway load measurements backing BENCH_gate.json
// (`acebench -exp gate`). One run drives four phases against a live
// gateway on loopback, with the acceptance gates enforced in the run
// itself — a failed gate fails the benchmark, not just a number in a
// report:
//
//   - Load: `Sessions` websocket sessions connect and join `Rooms`
//     rooms, all concurrently live (gate: peak concurrency and live
//     rooms meet the floors). Every session then fires `Adds` adds at
//     its own cell and one auditor per room checks the closed-form
//     sums — checksum parity across external clients (gate).
//
//   - Churn: after the load teardown, rooms are created and destroyed
//     in waves over the recycled slots (gate: the space table does not
//     grow past its pre-churn length — generation-tagged recycling,
//     DESIGN.md §14).
//
//   - Malformed: a client hammers the decode boundary with seeded
//     random and crafted-truncation payloads (gate: every one is
//     rejected, the session survives, and a valid op still works —
//     and the process reaching the end of the run is the zero-panic
//     proof, since a server-side panic would take the benchmark down).
//
//   - Teardown: everything closes; the table stays bounded.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/acedsm/ace/internal/gateway"
)

// GateConfig sizes one gate benchmark run.
type GateConfig struct {
	Sessions int // concurrent client sessions (acceptance floor: 10000)
	Rooms    int // rooms the sessions spread over (acceptance floor: 100)
	Adds     int // adds each session applies to its own cell
	Procs    int // processors backing the gateway cluster
	ChurnW   int // churn waves
	ChurnR   int // rooms created+destroyed per churn wave
	BadN     int // malformed payloads hammered at the decoder

	// Workers > 0 splits the client sessions across that many worker
	// subprocesses launched from the WorkerExec argv prefix (see
	// GateWorkerArgs). One process cannot hold both ends of tens of
	// thousands of loopback sockets under a typical RLIMIT_NOFILE hard
	// limit; with workers, the parent holds only the server-side
	// descriptors. Zero runs the sessions in process.
	Workers    int
	WorkerExec []string
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Sessions <= 0 {
		c.Sessions = 10000
	}
	if c.Rooms <= 0 {
		c.Rooms = 128
	}
	if c.Adds <= 0 {
		c.Adds = 8
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.ChurnW <= 0 {
		c.ChurnW = 8
	}
	if c.ChurnR <= 0 {
		c.ChurnR = 32
	}
	if c.BadN <= 0 {
		c.BadN = 4096
	}
	return c
}

// GateGates records each acceptance gate's verdict.
type GateGates struct {
	Concurrency bool `json:"concurrency"`   // peak sessions >= Sessions over >= Rooms rooms
	Parity      bool `json:"parity"`        // every auditor checksum matched the closed form
	BoundedHeap bool `json:"bounded_table"` // churn did not grow the space table
	ZeroPanics  bool `json:"zero_panics"`   // malformed phase completed with the process alive
}

// GateReport is the BENCH_gate.json document.
type GateReport struct {
	Generated string `json:"generated_by"`
	Procs     int    `json:"procs"`
	Sessions  int    `json:"sessions"`
	Rooms     int    `json:"rooms"`
	Adds      int    `json:"adds_per_session"`

	PeakSessions int     `json:"peak_concurrent_sessions"`
	PeakRooms    int     `json:"peak_live_rooms"`
	ConnectSecs  float64 `json:"connect_join_seconds"`
	JoinsPerSec  float64 `json:"joins_per_sec"`
	ApplySecs    float64 `json:"apply_seconds"`
	OpsPerSec    float64 `json:"ops_per_sec"`

	ChurnWaves       int `json:"churn_waves"`
	ChurnRooms       int `json:"churn_rooms_per_wave"`
	SlotsBeforeChurn int `json:"space_slots_before_churn"`
	SlotsBound       int `json:"space_slots_bound"`
	SlotsAfterChurn  int `json:"space_slots_after_churn"`

	Malformed uint64 `json:"malformed_frames_sent"`

	Stats struct {
		FramesIn           uint64 `json:"frames_in"`
		FramesOut          uint64 `json:"frames_out"`
		BadFrames          uint64 `json:"bad_frames"`
		OpsApplied         uint64 `json:"ops_applied"`
		OpsDropped         uint64 `json:"ops_dropped"`
		StaleSpaceRefs     uint64 `json:"stale_space_refs"`
		Broadcasts         uint64 `json:"broadcasts"`
		SendQueueDrops     uint64 `json:"send_queue_drops"`
		SlowClients        uint64 `json:"slow_clients"`
		SendQueueHighWater uint64 `json:"send_queue_high_water"`
		OpQueueHighWater   uint64 `json:"op_queue_high_water"`
	} `json:"stats"`

	Gates GateGates `json:"gates"`
}

// forEach runs fn(i) for i in [0,n) on a bounded worker pool, returning
// the first error.
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				bad := err != nil
				mu.Unlock()
				if bad || i >= n {
					return
				}
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// RunGate executes the gate benchmark and enforces its gates: a report
// is returned even on gate failure (so the numbers can be inspected),
// alongside the error naming the failed gate.
func RunGate(cfg GateConfig) (*GateReport, error) {
	cfg = cfg.withDefaults()
	rep := &GateReport{
		Generated:  "acebench -exp gate",
		Procs:      cfg.Procs,
		Sessions:   cfg.Sessions,
		Rooms:      cfg.Rooms,
		Adds:       cfg.Adds,
		ChurnWaves: cfg.ChurnW,
		ChurnRooms: cfg.ChurnR,
	}
	// In-process sessions need two descriptors each (client and server
	// end); with worker subprocesses the parent holds only the server
	// end. Either way, ask for the worst case and let the hard limit cap
	// it — the worker split exists precisely for when two-per-session
	// does not fit.
	raiseNoFile(uint64(cfg.Sessions)*2 + 4096)

	// Load-phase queues: the op queue must absorb a whole room's burst
	// (Sessions/Rooms members × Adds each), and idle sessions must not
	// be closed for missing broadcast deltas they never read — drops are
	// counted, the budget is effectively infinite.
	perRoom := (cfg.Sessions/cfg.Rooms + 1) * (cfg.Adds + 2)
	g, err := gateway.New(gateway.Config{
		Procs:      cfg.Procs,
		OpQueue:    perRoom * 2,
		SendQueue:  128,
		Policy:     gateway.SlowDrop,
		DropBudget: 1 << 30,
	})
	if err != nil {
		return rep, err
	}
	defer g.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	srv := g.Serve(ln)
	defer srv.Close()
	addr := srv.Addr()

	// Phase 1: connect and join everyone — in process, or split across
	// worker subprocesses when the descriptor budget demands it.
	fl, err := newFleet(cfg, addr)
	if err != nil {
		return rep, err
	}
	defer fl.shutdown()
	start := time.Now()
	if err := fl.join(); err != nil {
		return rep, err
	}
	rep.ConnectSecs = time.Since(start).Seconds()
	rep.JoinsPerSec = float64(cfg.Sessions) / rep.ConnectSecs
	s := g.Stats().Snapshot()
	rep.PeakSessions = int(s.SessionsOpened - s.SessionsClosed)
	rep.PeakRooms = g.LiveRooms()
	rep.Gates.Concurrency = rep.PeakSessions >= cfg.Sessions && rep.PeakRooms >= cfg.Rooms

	// Phase 2: every session adds to its own cell, fire-and-forget;
	// quiescence is the op counter reaching the closed-form total.
	applied0 := g.Stats().OpsApplied.Load()
	start = time.Now()
	if err := fl.adds(); err != nil {
		return rep, err
	}
	target := applied0 + uint64(cfg.Sessions)*uint64(cfg.Adds)
	deadline := time.Now().Add(120 * time.Second)
	for g.Stats().OpsApplied.Load() < target {
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("gate: ops never quiesced: applied %d, want %d (dropped %d)",
				g.Stats().OpsApplied.Load(), target, g.Stats().OpsDropped.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.ApplySecs = time.Since(start).Seconds()
	rep.OpsPerSec = float64(cfg.Sessions*cfg.Adds) / rep.ApplySecs

	// Parity: one fresh auditor per room reads the state and checks the
	// closed-form sums — what the room's members wrote is what an
	// external client reads back.
	want := make([][]int64, cfg.Rooms)
	for r := range want {
		want[r] = make([]int64, gateway.RoomCells)
	}
	for i := 0; i < cfg.Sessions; i++ {
		want[i%cfg.Rooms][i%gateway.RoomCells] += int64(cfg.Adds) * int64(i+1)
	}
	rep.Gates.Parity = true
	err = forEach(cfg.Rooms, 64, func(r int) error {
		c, err := gateway.DialClient(addr)
		if err != nil {
			return err
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(60 * time.Second))
		room := fmt.Sprintf("gate-%d", r)
		if _, _, err := c.Join(room); err != nil {
			return fmt.Errorf("auditor join %s: %w", room, err)
		}
		state, err := c.Get(room)
		if err != nil {
			return fmt.Errorf("auditor get %s: %w", room, err)
		}
		if got, exp := gateway.Checksum(state), gateway.Checksum(want[r]); got != exp {
			return fmt.Errorf("room %s: checksum %#x, want %#x", room, got, exp)
		}
		return nil
	})
	if err != nil {
		rep.Gates.Parity = false
		return rep, fmt.Errorf("gate: parity: %w", err)
	}

	// Teardown: close every load session (the disconnect path destroys
	// each room at its last member's departure).
	if err := fl.close(); err != nil {
		return rep, err
	}
	waitDeadline := time.Now().Add(120 * time.Second)
	for g.LiveRooms() > 0 {
		if time.Now().After(waitDeadline) {
			return rep, fmt.Errorf("gate: %d rooms still live after teardown", g.LiveRooms())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: churn over the recycled slots. A wave holds ChurnR rooms
	// live at once, so the table may legitimately reach ChurnR+1 slots
	// (the default space holds slot 0) — but once there, waves must
	// recycle, never grow: the bound is max(before, ChurnR+1).
	rep.SlotsBeforeChurn = g.SpaceSlots()
	rep.SlotsBound = rep.SlotsBeforeChurn
	if b := cfg.ChurnR + 1; b > rep.SlotsBound {
		rep.SlotsBound = b
	}
	churn, err := gateway.DialClient(addr)
	if err != nil {
		return rep, err
	}
	defer churn.Close()
	churn.SetDeadline(time.Now().Add(120 * time.Second))
	for w := 0; w < cfg.ChurnW; w++ {
		for r := 0; r < cfg.ChurnR; r++ {
			room := fmt.Sprintf("churn-%d", r)
			if _, _, err := churn.Join(room); err != nil {
				return rep, fmt.Errorf("churn wave %d join: %w", w, err)
			}
			if err := churn.Add(room, r%gateway.RoomCells, int64(w)); err != nil {
				return rep, err
			}
		}
		for r := 0; r < cfg.ChurnR; r++ {
			if err := churn.Leave(fmt.Sprintf("churn-%d", r)); err != nil {
				return rep, fmt.Errorf("churn wave %d leave: %w", w, err)
			}
		}
		if got := g.SpaceSlots(); got > rep.SlotsBound {
			rep.SlotsAfterChurn = got
			return rep, fmt.Errorf("gate: churn wave %d grew the space table past its bound: %d > %d",
				w, got, rep.SlotsBound)
		}
	}
	rep.SlotsAfterChurn = g.SpaceSlots()
	rep.Gates.BoundedHeap = rep.SlotsAfterChurn <= rep.SlotsBound

	// Phase 4: malformed frames. Seeded random payloads plus crafted
	// truncations of valid frames; the session must survive all of them
	// and still run a valid op. The process being alive at the end of
	// the phase is the zero-panic evidence.
	rng := rand.New(rand.NewSource(1))
	mal, err := gateway.DialClient(addr)
	if err != nil {
		return rep, err
	}
	defer mal.Close()
	mal.SetDeadline(time.Now().Add(120 * time.Second))
	valid, _ := gateway.EncodeFrame(gateway.Frame{Kind: gateway.OpSet, Room: "gate-0", Cell: 1, Value: 7})
	for i := 0; i < cfg.BadN; i++ {
		var payload []byte
		switch i % 3 {
		case 0: // random bytes
			payload = make([]byte, rng.Intn(64))
			rng.Read(payload)
		case 1: // truncated valid frame
			payload = valid[:rng.Intn(len(valid))]
		default: // valid header, corrupted body
			payload = append([]byte(nil), valid...)
			payload[rng.Intn(len(payload))] ^= byte(1 + rng.Intn(255))
		}
		// Joins and leaves answer with other events (or silence); every
		// other shape — bad decode, server kind, op on a missing room —
		// draws exactly one error event, making the hammer a strict
		// request/reply loop that also proves each rejection answered.
		if len(payload) > 0 && (payload[0] == gateway.OpJoin || payload[0] == gateway.OpLeave) {
			payload[0] = 0x00
		}
		if err := mal.SendRaw(payload); err != nil {
			return rep, fmt.Errorf("gate: malformed send %d: %w", i, err)
		}
		if _, err := mal.WaitFor(gateway.EvError, ""); err != nil {
			return rep, fmt.Errorf("gate: malformed frame %d drew no error reply: %w", i, err)
		}
		rep.Malformed++
	}
	// A valid op on the same connection proves the session survived.
	if _, _, err := mal.Join("survivor"); err != nil {
		return rep, fmt.Errorf("gate: session did not survive malformed frames: %w", err)
	}
	if err := mal.Leave("survivor"); err != nil {
		return rep, err
	}
	rep.Gates.ZeroPanics = true

	final := g.Stats().Snapshot()
	rep.Stats.FramesIn = final.FramesIn
	rep.Stats.FramesOut = final.FramesOut
	rep.Stats.BadFrames = final.BadFrames
	rep.Stats.OpsApplied = final.OpsApplied
	rep.Stats.OpsDropped = final.OpsDropped
	rep.Stats.StaleSpaceRefs = final.StaleSpaceRefs
	rep.Stats.Broadcasts = final.Broadcasts
	rep.Stats.SendQueueDrops = final.SendQueueDrops
	rep.Stats.SlowClients = final.SlowClients
	rep.Stats.SendQueueHighWater = final.SendQueueHighWater
	rep.Stats.OpQueueHighWater = final.OpQueueHighWater

	if !rep.Gates.Concurrency {
		return rep, fmt.Errorf("gate: concurrency floor missed: %d sessions over %d rooms",
			rep.PeakSessions, rep.PeakRooms)
	}
	return rep, nil
}

// WriteGateReport runs the gate benchmark and writes BENCH_gate.json.
func WriteGateReport(w io.Writer, cfg GateConfig) (*GateReport, error) {
	rep, err := RunGate(cfg)
	if rep != nil {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if werr := enc.Encode(rep); err == nil {
			err = werr
		}
	}
	return rep, err
}
