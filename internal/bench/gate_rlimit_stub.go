//go:build !unix

package bench

// raiseNoFile is a no-op where RLIMIT_NOFILE does not exist; the gate
// benchmark then runs within whatever the platform allows.
func raiseNoFile(need uint64) {}
