package bench

import (
	"testing"
	"time"
)

func TestURCSweepShape(t *testing.T) {
	msgs, err := URCSweep(4, []int{4, 64, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Larger caches can only reduce re-fetch traffic.
	if msgs[4] < msgs[64] || msgs[64] < msgs[1024] {
		t.Fatalf("messages not monotone in capacity: %v", msgs)
	}
	if msgs[4] == msgs[1024] {
		t.Fatalf("tiny cache shows no eviction effect: %v", msgs)
	}
}

func TestGranularitySweepShape(t *testing.T) {
	pts, err := GranularitySweep(4, 1024, []int{1, 32, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Same data volume, bigger regions, fewer messages (Section 2.3's
	// bulk-transfer argument).
	for i := 1; i < len(pts); i++ {
		if pts[i].Msgs >= pts[i-1].Msgs {
			t.Fatalf("messages not decreasing with region size: %+v", pts)
		}
	}
	if pts[0].Msgs < 10*pts[len(pts)-1].Msgs {
		t.Fatalf("bulk transfer effect too small: %+v", pts)
	}
}

func TestLatencySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency injection sleeps")
	}
	pts, err := LatencySweep(4, []time.Duration{0, 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// At high injected latency, the static update protocol's advantage
	// must be larger than at zero latency (the paper's premise: update
	// protocols remove synchronous round trips).
	if pts[1].Speedup <= pts[0].Speedup {
		t.Fatalf("speedup did not grow with latency: %+v", pts)
	}
}
