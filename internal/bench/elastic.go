package bench

// Elastic-membership measurements backing BENCH_elastic.json
// (`acebench -exp elastic`). Two suites:
//
//   - Recovery: the checkpointing EM3D workload run twice on fresh
//     clusters — once cold (full re-execution from step 0, the only
//     option without checkpoints) and once as a rejoin (restore the
//     last collective checkpoint, replay the remaining steps). Both
//     must converge to the bit-identical checksum; the rows compare
//     wall-clock and messages-to-converge, which is the bound the
//     checkpoint generation buys (DESIGN.md §13).
//
//   - Migration: a deliberately skewed placement — every region homed
//     at processor 0 while the other processors ping-pong exclusive
//     ownership through it — run under the adaptive controller with
//     re-homing enabled. The controller must observe the per-home
//     traffic skew and perform at least one traffic-driven MigrateHome
//     (the acceptance gate); the row records how many regions left the
//     hot home.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// ElasticRecoveryRow is one recovery mode's cost in BENCH_elastic.json.
type ElasticRecoveryRow struct {
	Mode          string  `json:"mode"` // "cold" or "rejoin"
	StepsReplayed int     `json:"steps_replayed"`
	Seconds       float64 `json:"seconds"`
	Msgs          uint64  `json:"msgs"`
	Bytes         uint64  `json:"bytes"`
	Checksum      float64 `json:"checksum"`
}

// ElasticMigrationRow is the traffic-driven re-homing demo's outcome.
type ElasticMigrationRow struct {
	Procs      int    `json:"procs"`
	Regions    int    `json:"regions"`
	Rounds     int    `json:"rounds"`
	Migrations uint64 `json:"migrations"`
	// HomesMoved counts regions no longer homed at the initially hot
	// processor when the run ends.
	HomesMoved int `json:"homes_moved"`
}

// ElasticReport is the BENCH_elastic.json document.
type ElasticReport struct {
	Generated string               `json:"generated_by"`
	Procs     int                  `json:"procs"`
	Steps     int                  `json:"em3d_steps"`
	CkptEvery int                  `json:"checkpoint_every"`
	CkptStep  int                  `json:"checkpoint_step"` // step the rejoin resumed from
	Recovery  []ElasticRecoveryRow `json:"recovery"`
	Migration ElasticMigrationRow  `json:"migration"`
}

// runElasticEM3D runs the checkpointing EM3D workload once on a fresh
// cluster. save and resume are per-rank hooks (nil to disable); the
// returned row carries rank 0's checksum and the cluster-wide traffic.
func runElasticEM3D(procs int, cfg em3d.Config, every int,
	save func(ck *core.Checkpoint) error,
	resume func(rank int) (*core.Checkpoint, error)) (ElasticRecoveryRow, error) {

	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		return ElasticRecoveryRow{}, err
	}
	defer cl.Close()
	sums := make([]float64, procs)
	start := time.Now()
	err = cl.Run(func(p *core.Proc) error {
		el := em3d.ElasticConfig{Every: every, Save: save}
		if resume != nil {
			ck, err := resume(p.ID())
			if err != nil {
				return err
			}
			el.Resume = ck
		}
		res, err := em3d.RunElastic(p, cfg, el)
		if err != nil {
			return err
		}
		sums[p.ID()] = res.Checksum
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return ElasticRecoveryRow{}, err
	}
	m := cl.Metrics()
	return ElasticRecoveryRow{
		Seconds:  elapsed.Seconds(),
		Msgs:     m.Net.MsgsSent,
		Bytes:    m.Net.BytesSent,
		Checksum: sums[0],
	}, nil
}

// measureElasticRecovery produces the cold-vs-rejoin comparison. The
// cold run doubles as the checkpoint producer: its Save hook keeps each
// rank's newest encoded checkpoint in memory (exactly what acenode
// keeps on disk), and the rejoin run restores from those and replays
// only the remaining steps.
func measureElasticRecovery(w Workloads) (rows []ElasticRecoveryRow, ckptEvery, ckptStep int, err error) {
	cfg := w.EM3D
	ckptEvery = cfg.Steps / 4
	if ckptEvery < 1 {
		ckptEvery = 1
	}
	saved := make([][]byte, w.Procs)
	lastStep := make([]int, w.Procs)
	save := func(ck *core.Checkpoint) error {
		saved[ck.Rank] = core.EncodeCheckpoint(ck)
		lastStep[ck.Rank] = int(ck.App)
		return nil
	}
	cold, err := runElasticEM3D(w.Procs, cfg, ckptEvery, save, nil)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cold run: %w", err)
	}
	ckptStep = lastStep[0]
	cold.Mode = "cold"
	cold.StepsReplayed = cfg.Steps

	resume := func(rank int) (*core.Checkpoint, error) {
		if saved[rank] == nil {
			return nil, fmt.Errorf("rank %d produced no checkpoint", rank)
		}
		return core.DecodeCheckpoint(saved[rank])
	}
	rejoin, err := runElasticEM3D(w.Procs, cfg, ckptEvery, nil, resume)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("rejoin run: %w", err)
	}
	rejoin.Mode = "rejoin"
	rejoin.StepsReplayed = cfg.Steps - ckptStep
	return []ElasticRecoveryRow{cold, rejoin}, ckptEvery, ckptStep, nil
}

// measureElasticMigration runs the skewed-placement workload under the
// re-homing controller. Processor 0 homes every region and does no work
// of its own; the others ping-pong exclusive ownership through it, so
// the per-home traffic vector is maximally skewed and the controller
// must migrate.
func measureElasticMigration(procs int) (ElasticMigrationRow, error) {
	const regions, rounds, hammers = 8, 40, 24
	row := ElasticMigrationRow{Procs: procs, Regions: regions, Rounds: rounds}
	acfg := &core.AdaptConfig{
		EpochBarriers:  2,
		Cooldown:       -1, // no initial quiet period
		MinOps:         1,
		MigrateFactor:  2,
		MinMigrateMsgs: 8,
	}
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry(), Adapt: acfg})
	if err != nil {
		return row, err
	}
	defer cl.Close()
	moved := make([]int, procs)
	err = cl.Run(func(p *core.Proc) error {
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}
		ids := make([]core.RegionID, regions)
		for r := range ids {
			if p.ID() == 0 {
				ids[r] = p.GMalloc(sp, 8)
			}
			ids[r] = p.BroadcastID(0, ids[r])
		}
		hs := make([]*core.Region, regions)
		for r, id := range ids {
			hs[r] = p.Map(id)
		}
		p.Barrier(sp)
		for round := 0; round < rounds; round++ {
			if p.ID() != 0 {
				// Every non-home processor writes the same region
				// sequence, so exclusive ownership ping-pongs through
				// the home's directory on each transfer.
				for k := 0; k < hammers; k++ {
					h := hs[(round+k)%regions]
					p.StartWrite(h)
					h.Data.SetInt64(0, int64(round*hammers+k))
					p.EndWrite(h)
				}
			}
			p.Barrier(sp)
		}
		for _, h := range hs {
			if int(h.Home) != 0 {
				moved[p.ID()]++
			}
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	for _, a := range cl.Metrics().Adapt {
		row.Migrations += a.Migrations
	}
	row.HomesMoved = moved[0]
	return row, nil
}

// MeasureElastic runs both suites and returns the report body.
func MeasureElastic(w Workloads) (ElasticReport, error) {
	rep := ElasticReport{
		Generated: "acebench -exp elastic",
		Procs:     w.Procs,
		Steps:     w.EM3D.Steps,
	}
	rows, every, step, err := measureElasticRecovery(w)
	if err != nil {
		return rep, err
	}
	rep.Recovery, rep.CkptEvery, rep.CkptStep = rows, every, step
	mig, err := measureElasticMigration(w.Procs)
	if err != nil {
		return rep, fmt.Errorf("migration: %w", err)
	}
	rep.Migration = mig
	return rep, nil
}

// WriteElasticReport measures and writes the BENCH_elastic.json
// document.
func WriteElasticReport(out io.Writer, w Workloads) (ElasticReport, error) {
	rep, err := MeasureElastic(w)
	if err != nil {
		return rep, err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// FormatElastic renders the report for the console.
func FormatElastic(rep ElasticReport) string {
	s := fmt.Sprintf("recovery (em3d, %d procs, %d steps, checkpoint every %d, resumed at %d):\n",
		rep.Procs, rep.Steps, rep.CkptEvery, rep.CkptStep)
	s += fmt.Sprintf("  %-8s %14s %12s %12s %12s\n", "mode", "steps replayed", "seconds", "msgs", "bytes")
	for _, r := range rep.Recovery {
		s += fmt.Sprintf("  %-8s %14d %12.4f %12d %12d\n", r.Mode, r.StepsReplayed, r.Seconds, r.Msgs, r.Bytes)
	}
	m := rep.Migration
	s += fmt.Sprintf("migration (%d procs, %d regions homed at proc 0, %d skewed rounds):\n",
		m.Procs, m.Regions, m.Rounds)
	s += fmt.Sprintf("  controller migrations: %d, regions re-homed off proc 0: %d", m.Migrations, m.HomesMoved)
	return s
}

// CheckElasticGates enforces the structural acceptance gates: the
// rejoin must reach the cold run's bit-identical checksum with fewer
// replayed steps and less traffic, and the controller must have
// performed at least one traffic-driven migration.
func CheckElasticGates(rep ElasticReport) error {
	if len(rep.Recovery) != 2 {
		return fmt.Errorf("elastic: %d recovery rows, want 2", len(rep.Recovery))
	}
	cold, rejoin := rep.Recovery[0], rep.Recovery[1]
	if rejoin.Checksum != cold.Checksum {
		return fmt.Errorf("elastic: rejoin checksum %.17g != cold %.17g", rejoin.Checksum, cold.Checksum)
	}
	if rejoin.StepsReplayed >= cold.StepsReplayed {
		return fmt.Errorf("elastic: rejoin replayed %d steps, cold %d — checkpoint bought nothing",
			rejoin.StepsReplayed, cold.StepsReplayed)
	}
	if rejoin.Msgs >= cold.Msgs {
		return fmt.Errorf("elastic: rejoin took %d msgs to converge, cold restart %d", rejoin.Msgs, cold.Msgs)
	}
	if rep.Migration.Migrations < 1 {
		return fmt.Errorf("elastic: controller performed no traffic-driven migration under maximal home skew")
	}
	return nil
}
