package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/acedsm/ace/internal/stats"
	"github.com/acedsm/ace/internal/trace"
)

// FormatMetrics renders an observability snapshot as tables: one row per
// operation with counts and latency quantiles, a per-space protocol
// breakdown, and the network totals.
func FormatMetrics(m trace.Metrics) string {
	var b strings.Builder

	ops := stats.NewTable("operation", "count", "fast hits", "mean", "p50", "p99")
	for op := trace.Op(0); op < trace.NumOps; op++ {
		h := m.OpLatency[op]
		if h.Count == 0 && m.Ops[op] == 0 {
			continue
		}
		ops.AddRow(op.String(), m.Ops[op], m.FastOps[op],
			round(h.Mean()), round(h.Quantile(0.5)), round(h.Quantile(0.99)))
	}
	b.WriteString(ops.String())

	if len(m.Spaces) > 0 {
		b.WriteString("\n")
		sp := stats.NewTable("space", "protocol", "ops", "fast hits", "busiest op", "count")
		for _, s := range m.Spaces {
			top, topN := trace.Op(0), uint64(0)
			for op := trace.Op(0); op < trace.NumOps; op++ {
				if s.Ops[op] > topN {
					top, topN = op, s.Ops[op]
				}
			}
			busiest := "-"
			if topN > 0 {
				busiest = top.String()
			}
			sp.AddRow(s.Space, s.Protocol, s.Ops.Total(), s.FastOps.Total(), busiest, topN)
		}
		b.WriteString(sp.String())
	}

	b.WriteString("\n")
	fmt.Fprintf(&b, "network: %d msgs / %d bytes sent, %d msgs / %d bytes received\n",
		m.Net.MsgsSent, m.Net.BytesSent, m.Net.MsgsRecv, m.Net.BytesRecv)
	if c := m.Coll; c.Barriers+c.Reduces+c.Bcasts+c.AggFrames > 0 {
		fmt.Fprintf(&b, "collectives: %d barriers, %d reduces, %d bcasts (thread entries); %d msgs / %d bytes on the wire\n",
			c.Barriers, c.Reduces, c.Bcasts, c.Hops, c.Bytes)
		if c.AggFrames > 0 {
			fmt.Fprintf(&b, "aggregation: %d frames carried %d region updates (%.1f/frame, %d bytes); regions-per-frame",
				c.AggFrames, c.AggRegions, float64(c.AggRegions)/float64(c.AggFrames), c.AggBytes)
			for i := 0; i < trace.FrameBuckets; i++ {
				fmt.Fprintf(&b, " %s:%d", trace.FrameBucketLabel(i), c.FrameHist[i])
			}
			b.WriteString("\n")
		}
	}
	if d := m.Net.Deliver; d.Count > 0 {
		fmt.Fprintf(&b, "send→deliver latency: %d samples, mean %v, p50 %v, p99 %v\n",
			d.Count, round(d.Mean()), round(d.Quantile(0.5)), round(d.Quantile(0.99)))
	}
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
