package bench

import (
	"testing"
)

// fabricNodes matches the acceptance configuration: 8 nodes, small
// messages.
const fabricNodes = 8

// BenchmarkFabricRoundtrip measures one ping-pong roundtrip (two
// send→deliver→dispatch traversals) between two nodes.
func BenchmarkFabricRoundtrip(b *testing.B) {
	for _, tr := range []string{"chan", "tcp"} {
		b.Run(tr, func(b *testing.B) {
			nw, err := newFabric(tr, 2)
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Close()
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := FabricRoundtrip(nw, b.N, 0); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFabricThroughput measures many-to-one small-message delivery
// on an 8-node network; the reported custom metric is messages per
// second at the sink.
func BenchmarkFabricThroughput(b *testing.B) {
	for _, tr := range []string{"chan", "tcp"} {
		b.Run(tr, func(b *testing.B) {
			nw, err := newFabric(tr, fabricNodes)
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Close()
			perSender := b.N
			b.ReportAllocs()
			b.ResetTimer()
			el, err := FabricThroughput(nw, perSender, 0)
			if err != nil {
				b.Fatal(err)
			}
			msgs := perSender * (fabricNodes - 1)
			b.ReportMetric(float64(msgs)/el.Seconds(), "msgs/sec")
		})
	}
}

// TestFabricMeasurement smoke-tests the measurement harness at a tiny
// scale on both transports.
func TestFabricMeasurement(t *testing.T) {
	res, err := MeasureFabric(4, 200, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.MsgsPerSec <= 0 || r.NsPerMsg <= 0 {
			t.Errorf("%s: non-positive rate: %+v", r.Name, r)
		}
	}
	t.Logf("\n%s", FormatFabric(res, nil))
}
