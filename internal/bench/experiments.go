package bench

import (
	"fmt"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/barneshut"
	"github.com/acedsm/ace/internal/apps/bsc"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/apps/tsp"
	"github.com/acedsm/ace/internal/apps/water"
	"github.com/acedsm/ace/internal/rtiface"
	"github.com/acedsm/ace/internal/stats"
)

// Scale selects workload sizes. "small" keeps unit tests fast; "default"
// is laptop-scale; "paper" approaches the paper's inputs (Table 3).
type Scale string

// The available scales.
const (
	ScaleSmall   Scale = "small"
	ScaleDefault Scale = "default"
	ScalePaper   Scale = "paper"
)

// Workloads holds the per-benchmark configurations for one experiment run.
type Workloads struct {
	Procs     int
	EM3D      em3d.Config
	TSP       tsp.Config
	BarnesHut barneshut.Config
	Water     water.Config
	BSC       bsc.Config
}

// WorkloadsFor returns the benchmark configurations at the given scale.
func WorkloadsFor(scale Scale, procs int) Workloads {
	w := Workloads{
		Procs:     procs,
		EM3D:      em3d.DefaultConfig(),
		TSP:       tsp.DefaultConfig(),
		BarnesHut: barneshut.DefaultConfig(),
		Water:     water.DefaultConfig(),
		BSC:       bsc.DefaultConfig(),
	}
	switch scale {
	case ScaleSmall:
		w.EM3D.Nodes, w.EM3D.Steps = 64, 4
		w.TSP.Cities = 8
		w.BarnesHut.Bodies, w.BarnesHut.Steps = 64, 3
		w.Water.Molecules, w.Water.Steps = 24, 3
		w.BSC.Blocks, w.BSC.BlockSize = 8, 8
	case ScalePaper:
		// Table 3 inputs, scaled where wall-clock demands: EM3D exact
		// (1000+1000 vertices, 20% remote, degree 10, 100 steps), TSP 12
		// cities exact, Water 512 molecules / 3 steps exact; Barnes-Hut
		// reduced from 16384 to 2048 bodies (tree build is O(N log N)
		// per processor here since the tree is replicated).
		w.EM3D.Nodes, w.EM3D.Steps = 1000, 100
		w.TSP.Cities = 12
		w.BarnesHut.Bodies, w.BarnesHut.Steps = 2048, 4
		w.Water.Molecules, w.Water.Steps = 512, 3
		w.BSC.Blocks, w.BSC.BlockSize, w.BSC.Bandwidth = 24, 24, 6
	}
	return w
}

// Row is one benchmark's outcome in a two-system comparison.
type Row struct {
	App      string
	Base     apputil.Result // CRL (fig 7a) or Ace/sc (fig 7b)
	Opt      apputil.Result // Ace (fig 7a) or Ace/custom (fig 7b)
	Speedup  float64        // Base.Time / Opt.Time
	Checksum bool           // checksums agree
}

// apps enumerates the benchmark closures for a workload set.
func apps(w Workloads, custom bool) []struct {
	name string
	fn   AppFunc
} {
	e, t, b, wa, c := w.EM3D, w.TSP, w.BarnesHut, w.Water, w.BSC
	if custom {
		e.Proto = "staticupdate"
		t.CounterProto = "atomic"
		b.Proto = "update"
		wa.PhaseProtocols = true
		c.Proto = "homewrite"
	}
	return []struct {
		name string
		fn   AppFunc
	}{
		{"barnes-hut", func(rt rtiface.RT) (apputil.Result, error) { return barneshut.Run(rt, b) }},
		{"bsc", func(rt rtiface.RT) (apputil.Result, error) { return bsc.Run(rt, c) }},
		{"em3d", func(rt rtiface.RT) (apputil.Result, error) { return em3d.Run(rt, e) }},
		{"tsp", func(rt rtiface.RT) (apputil.Result, error) { return tsp.Run(rt, t) }},
		{"water", func(rt rtiface.RT) (apputil.Result, error) { return water.Run(rt, wa) }},
	}
}

// App returns the named benchmark closure for a workload set (custom
// selects the application-specific protocols instead of sequential
// consistency), reporting ok=false for an unknown name.
func App(w Workloads, name string, custom bool) (AppFunc, bool) {
	for _, a := range apps(w, custom) {
		if a.name == name {
			return a.fn, true
		}
	}
	return nil, false
}

// AppNames lists the benchmark names accepted by App.
func AppNames() []string {
	var names []string
	for _, a := range apps(Workloads{}, false) {
		names = append(names, a.name)
	}
	return names
}

// timeOf returns the comparable time for a result: per-iteration time for
// the iterative benchmarks, total time otherwise (Section 5.1).
func timeOf(r apputil.Result) time.Duration {
	if r.TimePerIter > 0 {
		return r.TimePerIter
	}
	return r.Total
}

// Fig7a runs every benchmark on both runtimes under the sequentially
// consistent protocol: the paper's Figure 7a.
func Fig7a(w Workloads) ([]Row, error) {
	var rows []Row
	for _, a := range apps(w, false) {
		crlRes, err := RunCRL(w.Procs, a.fn)
		if err != nil {
			return nil, fmt.Errorf("fig7a %s (crl): %w", a.name, err)
		}
		aceRes, err := RunAce(w.Procs, a.fn)
		if err != nil {
			return nil, fmt.Errorf("fig7a %s (ace): %w", a.name, err)
		}
		rows = append(rows, Row{
			App:      a.name,
			Base:     crlRes,
			Opt:      aceRes,
			Speedup:  ratio(timeOf(crlRes), timeOf(aceRes)),
			Checksum: checksumsMatch(crlRes.Checksum, aceRes.Checksum),
		})
	}
	return rows, nil
}

// Fig7b runs every benchmark on Ace under the sequentially consistent
// protocol and under its application-specific protocol: the paper's
// Figure 7b.
func Fig7b(w Workloads) ([]Row, error) {
	sc := apps(w, false)
	custom := apps(w, true)
	var rows []Row
	for i := range sc {
		scRes, err := RunAce(w.Procs, sc[i].fn)
		if err != nil {
			return nil, fmt.Errorf("fig7b %s (sc): %w", sc[i].name, err)
		}
		cuRes, err := RunAce(w.Procs, custom[i].fn)
		if err != nil {
			return nil, fmt.Errorf("fig7b %s (custom): %w", sc[i].name, err)
		}
		rows = append(rows, Row{
			App:      sc[i].name,
			Base:     scRes,
			Opt:      cuRes,
			Speedup:  ratio(timeOf(scRes), timeOf(cuRes)),
			Checksum: checksumsMatch(scRes.Checksum, cuRes.Checksum),
		})
	}
	return rows, nil
}

// FormatRows renders comparison rows as a table, labelling the base and
// optimized columns.
func FormatRows(rows []Row, baseLabel, optLabel string) string {
	t := stats.NewTable("benchmark", baseLabel, optLabel, "speedup",
		baseLabel+" msgs", optLabel+" msgs", "checksum")
	for _, r := range rows {
		check := "ok"
		if !r.Checksum {
			check = "MISMATCH"
		}
		t.AddRow(r.App,
			timeOf(r.Base).Round(time.Microsecond).String(),
			timeOf(r.Opt).Round(time.Microsecond).String(),
			r.Speedup,
			r.Base.Msgs, r.Opt.Msgs, check)
	}
	return t.String()
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// checksumsMatch compares checksums with a relative tolerance: protocols
// may legitimately reorder floating-point accumulation (pipeline combines
// at the home in arrival order), so bit-exact equality is not required,
// but agreement to 1e-6 relative is.
func checksumsMatch(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := max(abs(a), abs(b), 1e-9)
	return diff/mag < 1e-6
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
