// Package gossip implements the membership and failure-detection layer
// for multi-process Ace clusters: a Cassandra-style anti-entropy
// protocol (SYN → ACK → ACK2) with per-node heartbeat versions and
// timeout-based suspicion.
//
// Every node periodically picks a few peers and exchanges digests of
// everything it knows: (node, generation, version) triples. The peer
// replies with the states it has newer versions of and a request list
// for the states it is behind on; a final ACK2 delivers those. A node's
// generation is fixed at startup (a restart gets a fresh, larger one)
// and its version is a heartbeat counter it increments every round, so
// "newer" is well defined across restarts: higher generation wins, then
// higher version. Rumors spread epidemically — with fanout f, a new
// state reaches all n nodes in O(log_f n) rounds.
//
// Each node state carries a small metadata payload: the node's gossip
// address (so learned nodes become gossip targets) and its data-plane
// address (the ephemeral tcpnet listener — the rendezvous problem this
// layer exists to solve). Membership has converged when every expected
// node's data address is known.
//
// Failure detection is the simple end of the phi-accrual spectrum: a
// node whose heartbeat has not advanced for SuspectAfter is suspected,
// and for DeadAfter is declared dead (the OnDead callback feeds the
// transport's peer-down path). Fresh heartbeats un-suspect; a higher
// generation resurrects even a declared-dead node.
//
// The Agent is a pure state machine: it never starts goroutines, reads
// clocks, or touches sockets. Time enters through the explicit now
// arguments of Tick and Handle, randomness through the seeded Config,
// and packets leave through the send callback — which makes every test
// deterministic and lets the daemon choose its own transport (see
// UDPTransport) and tick cadence.
package gossip

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Status is a node's liveness as judged by the local failure detector.
type Status uint8

const (
	// Unknown: expected but never heard from.
	Unknown Status = iota
	// Alive: heartbeat advancing within SuspectAfter.
	Alive
	// Suspect: no heartbeat progress for SuspectAfter.
	Suspect
	// Dead: no heartbeat progress for DeadAfter; surfaced through
	// OnDead. Only a higher generation (a restart) revives it.
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Config parameterizes an Agent.
type Config struct {
	// ID is this node's id, in [0, Nodes).
	ID int
	// Nodes is the expected cluster size.
	Nodes int
	// Generation distinguishes incarnations of the same id; a restart
	// must supply a larger value (wall-clock start time works). Zero
	// gets 1 so a live node always beats an Unknown one.
	Generation uint64
	// Seed seeds the peer-selection RNG; runs with equal seeds and
	// equal packet orders make identical choices.
	Seed int64
	// Fanout is how many peers each Tick gossips to. Default 3.
	Fanout int
	// SuspectAfter and DeadAfter are the failure detector's two
	// thresholds, measured in time since a node's heartbeat last
	// advanced. Defaults 3s / 10s.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// GossipAddr and DataAddr are this node's advertised addresses:
	// where peers gossip to it and where its tcpnet listener accepts
	// data connections.
	GossipAddr string
	DataAddr   string
	// Seeds are gossip addresses to contact before any peers are
	// known — at least one (that is not this node's own) is needed to
	// join a cluster of strangers.
	Seeds []string

	// OnAlive fires when a node is first heard from or recovers from
	// suspicion; OnSuspect and OnDead fire on the respective
	// transitions. All callbacks run synchronously inside Tick or
	// Handle, at most once per transition, and must not call back into
	// the Agent.
	OnAlive   func(node int)
	OnSuspect func(node int)
	OnDead    func(node int)

	// OnResurrect fires when a known node reappears with a higher
	// generation — a restarted process, whether or not the detector had
	// declared the old incarnation dead yet (a fast restart can outrun
	// suspicion, but a generation bump is proof positive the previous
	// incarnation is gone). Runs under the same rules as the other
	// callbacks.
	OnResurrect func(node int)
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * time.Second
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	if c.Generation == 0 {
		c.Generation = 1
	}
	return c
}

// NodeState is one node's gossiped state: the (Gen, Ver) heartbeat pair
// that orders rumors, the advertised addresses, and the local
// detector's verdict.
type NodeState struct {
	Node       int    `json:"node"`
	Gen        uint64 `json:"gen"`
	Ver        uint64 `json:"ver"`
	GossipAddr string `json:"gossip_addr"`
	DataAddr   string `json:"data_addr"`
	Status     Status `json:"-"`
}

// newer reports whether s supersedes o: higher generation, or same
// generation and higher version.
func (s NodeState) newer(o NodeState) bool {
	if s.Gen != o.Gen {
		return s.Gen > o.Gen
	}
	return s.Ver > o.Ver
}

type digest struct {
	Node int    `json:"node"`
	Gen  uint64 `json:"gen"`
	Ver  uint64 `json:"ver"`
}

// packet kinds: the three phases of one anti-entropy exchange.
const (
	kindSyn  = 1 // digests of everything the sender knows
	kindAck  = 2 // states newer than the digests + request list
	kindAck2 = 3 // the requested states
)

type packet struct {
	Kind    int         `json:"kind"`
	From    int         `json:"from"`
	Digests []digest    `json:"digests,omitempty"`
	States  []NodeState `json:"states,omitempty"`
	Want    []int       `json:"want,omitempty"`
}

// Agent is one node's gossip state machine. Methods are safe for
// concurrent use; callbacks run under the Agent's lock.
type Agent struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	send  func(addr string, pkt []byte)
	peers map[int]*peerState // every node id ever heard of, incl. self
}

type peerState struct {
	NodeState
	// heard is the last instant the node's heartbeat advanced (for
	// self: always fresh).
	heard time.Time
}

// New builds an Agent. send transmits one encoded packet to a peer's
// gossip address; it may drop, delay or duplicate (the protocol is
// idempotent) and must not call back into the Agent synchronously with
// a Handle of its own delivery.
func New(cfg Config, send func(addr string, pkt []byte)) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 || cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("gossip: node %d of %d out of range", cfg.ID, cfg.Nodes)
	}
	a := &Agent{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		send:  send,
		peers: make(map[int]*peerState),
	}
	a.peers[cfg.ID] = &peerState{NodeState: NodeState{
		Node:       cfg.ID,
		Gen:        cfg.Generation,
		Ver:        1,
		GossipAddr: cfg.GossipAddr,
		DataAddr:   cfg.DataAddr,
		Status:     Alive,
	}}
	return a, nil
}

// ID returns this agent's node id.
func (a *Agent) ID() int { return a.cfg.ID }

// Tick advances one gossip round: the local heartbeat increments, the
// failure detector re-judges every known peer, and a SYN goes out to
// Fanout targets chosen from the known gossip addresses (falling back
// to the configured Seeds while strangers remain).
func (a *Agent) Tick(now time.Time) {
	a.mu.Lock()
	self := a.peers[a.cfg.ID]
	self.Ver++
	self.heard = now

	a.judgeLocked(now)

	targets := a.targetsLocked()
	// The SYN carries the sender's own full state besides the digests:
	// a receiver that has never heard of the sender (first contact
	// through a seed) needs its gossip address to reply at all.
	syn, _ := json.Marshal(packet{
		Kind:    kindSyn,
		From:    a.cfg.ID,
		Digests: a.digestsLocked(),
		States:  []NodeState{self.NodeState},
	})
	a.mu.Unlock()

	for _, addr := range targets {
		a.send(addr, syn)
	}
}

// judgeLocked runs the failure detector over every known peer.
func (a *Agent) judgeLocked(now time.Time) {
	for id, ps := range a.peers {
		if id == a.cfg.ID || ps.Status == Unknown {
			continue
		}
		silent := now.Sub(ps.heard)
		switch {
		case silent >= a.cfg.DeadAfter:
			if ps.Status != Dead {
				ps.Status = Dead
				if a.cfg.OnDead != nil {
					a.cfg.OnDead(id)
				}
			}
		case silent >= a.cfg.SuspectAfter:
			if ps.Status == Alive {
				ps.Status = Suspect
				if a.cfg.OnSuspect != nil {
					a.cfg.OnSuspect(id)
				}
			}
		}
	}
}

// targetsLocked picks Fanout distinct gossip targets: known live peers
// first, and while any expected node is still unknown, the seed
// addresses too (so a cold cluster can bootstrap from one seed).
func (a *Agent) targetsLocked() []string {
	var pool []string
	seen := map[string]bool{a.cfg.GossipAddr: true}
	for id, ps := range a.peers {
		if id == a.cfg.ID || ps.GossipAddr == "" || seen[ps.GossipAddr] {
			continue
		}
		if ps.Status == Dead {
			continue
		}
		pool = append(pool, ps.GossipAddr)
		seen[ps.GossipAddr] = true
	}
	if len(a.peers) < a.cfg.Nodes {
		for _, s := range a.cfg.Seeds {
			if !seen[s] {
				pool = append(pool, s)
				seen[s] = true
			}
		}
	}
	sort.Strings(pool) // determinism: map order must not leak into choices
	a.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > a.cfg.Fanout {
		pool = pool[:a.cfg.Fanout]
	}
	return pool
}

func (a *Agent) digestsLocked() []digest {
	ds := make([]digest, 0, len(a.peers))
	for id, ps := range a.peers {
		ds = append(ds, digest{Node: id, Gen: ps.Gen, Ver: ps.Ver})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Node < ds[j].Node })
	return ds
}

// statesLocked returns full states for the given ids (unknown ids are
// skipped).
func (a *Agent) statesLocked(ids []int) []NodeState {
	var out []NodeState
	for _, id := range ids {
		if ps, ok := a.peers[id]; ok {
			out = append(out, ps.NodeState)
		}
	}
	return out
}

// mergeLocked folds a received state in, returning whether it was news.
func (a *Agent) mergeLocked(st NodeState, now time.Time) bool {
	if st.Node < 0 || st.Node >= a.cfg.Nodes || st.Node == a.cfg.ID {
		return false
	}
	ps, ok := a.peers[st.Node]
	if !ok {
		ps = &peerState{NodeState: st, heard: now}
		ps.Status = Alive
		a.peers[st.Node] = ps
		if a.cfg.OnAlive != nil {
			a.cfg.OnAlive(st.Node)
		}
		return true
	}
	if !st.newer(ps.NodeState) {
		return false
	}
	restarted := st.Gen > ps.Gen
	resurrected := ps.Status == Dead && restarted
	wasDown := ps.Status == Suspect || resurrected
	status := ps.Status
	if status != Dead || resurrected {
		status = Alive
	}
	ps.NodeState = st
	ps.Status = status
	if status == Alive {
		ps.heard = now
	}
	if restarted && a.cfg.OnResurrect != nil {
		a.cfg.OnResurrect(st.Node)
	}
	if wasDown && status == Alive && a.cfg.OnAlive != nil {
		a.cfg.OnAlive(st.Node)
	}
	return true
}

// Handle processes one received packet, replying through send as the
// exchange's phase demands. Malformed packets are dropped.
func (a *Agent) Handle(data []byte, now time.Time) {
	var p packet
	if err := json.Unmarshal(data, &p); err != nil {
		return
	}
	a.mu.Lock()
	var reply *packet
	switch p.Kind {
	case kindSyn:
		// First fold in the sender's piggybacked self-state (first
		// contact: learn who is talking), then compare its digests with
		// local knowledge: send back what we know better, ask for what
		// they know better.
		for _, st := range p.States {
			a.mergeLocked(st, now)
		}
		ack := packet{Kind: kindAck, From: a.cfg.ID}
		mentioned := make(map[int]bool, len(p.Digests))
		for _, d := range p.Digests {
			if d.Node < 0 || d.Node >= a.cfg.Nodes {
				continue
			}
			mentioned[d.Node] = true
			ps, ok := a.peers[d.Node]
			remote := NodeState{Node: d.Node, Gen: d.Gen, Ver: d.Ver}
			switch {
			case !ok:
				ack.Want = append(ack.Want, d.Node)
			case remote.newer(ps.NodeState):
				ack.Want = append(ack.Want, d.Node)
			case ps.NodeState.newer(remote):
				ack.States = append(ack.States, ps.NodeState)
			}
		}
		for id, ps := range a.peers {
			if !mentioned[id] {
				ack.States = append(ack.States, ps.NodeState)
			}
		}
		sort.Slice(ack.States, func(i, j int) bool { return ack.States[i].Node < ack.States[j].Node })
		sort.Ints(ack.Want)
		reply = &ack
	case kindAck:
		for _, st := range p.States {
			a.mergeLocked(st, now)
		}
		if len(p.Want) > 0 {
			reply = &packet{Kind: kindAck2, From: a.cfg.ID, States: a.statesLocked(p.Want)}
		}
	case kindAck2:
		for _, st := range p.States {
			a.mergeLocked(st, now)
		}
	}
	var addr string
	if reply != nil {
		if ps, ok := a.peers[p.From]; ok && ps.GossipAddr != "" {
			addr = ps.GossipAddr
		} else {
			reply = nil // stranger with no return address yet
		}
	}
	a.mu.Unlock()
	if reply != nil {
		buf, _ := json.Marshal(reply)
		a.send(addr, buf)
	}
}

// View returns a snapshot of every known node's state, ordered by id.
func (a *Agent) View() []NodeState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]NodeState, 0, len(a.peers))
	for _, ps := range a.peers {
		out = append(out, ps.NodeState)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Converged reports whether every expected node's data address is
// known — the condition the bootstrap path waits for before completing
// the tcpnet mesh.
func (a *Agent) Converged() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.peers) < a.cfg.Nodes {
		return false
	}
	for _, ps := range a.peers {
		if ps.DataAddr == "" {
			return false
		}
	}
	return true
}

// DataAddrs returns every node's data address indexed by id; ok is
// false until Converged.
func (a *Agent) DataAddrs() (addrs []string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.peers) < a.cfg.Nodes {
		return nil, false
	}
	addrs = make([]string, a.cfg.Nodes)
	for id, ps := range a.peers {
		if ps.DataAddr == "" {
			return nil, false
		}
		addrs[id] = ps.DataAddr
	}
	return addrs, true
}
