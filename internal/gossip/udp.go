package gossip

import (
	"net"
	"sync"
	"time"
)

// maxPacket bounds a gossip datagram. Digests and states for a few
// dozen nodes fit comfortably; the protocol degrades gracefully if a
// packet is dropped, so an oversized one is simply not sent.
const maxPacket = 60 * 1024

// UDPTransport carries gossip packets over UDP datagrams: the natural
// fit for an unreliable, connectionless, idempotent protocol (a lost
// SYN costs one round of convergence, nothing more).
type UDPTransport struct {
	conn *net.UDPConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenUDP binds the gossip socket. addr is "host:port"; port 0 binds
// ephemerally (Addr reveals the choice).
func ListenUDP(addr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn}, nil
}

// Addr returns the bound gossip address.
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// Send transmits one packet; errors (unresolvable peer, full socket
// buffer) are dropped on the floor — gossip's redundancy is the
// retry.
func (t *UDPTransport) Send(addr string, pkt []byte) {
	if len(pkt) > maxPacket {
		return
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	t.conn.WriteToUDP(pkt, ua)
}

// Serve reads datagrams and hands each to fn with the receive time,
// until Close. It blocks; run it on its own goroutine.
func (t *UDPTransport) Serve(fn func(pkt []byte, now time.Time)) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.mu.Unlock()
	defer t.wg.Done()
	buf := make([]byte, maxPacket)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		fn(pkt, time.Now())
	}
}

// Close shuts the socket down and waits for Serve to return.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
