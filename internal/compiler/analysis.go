package compiler

import (
	"fmt"
	"sort"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// This file implements the global dataflow analysis of Section 4.2: for
// each shared access, compute the set of spaces possibly associated with
// the accessed data, and compose it with the set of protocols each space
// may run under, yielding the set of possible protocols at each
// annotation. Space sets propagate from declared parameter types and
// through moves, loads of region-valued slots (the language-level type
// information that makes this easy at the source level — Section 1.1's
// contrast with Shasta), and calls (interprocedurally, to a fixed point).

// spaceSet is a bitset over space ids (programs use few spaces).
type spaceSet uint64

func (s spaceSet) union(o spaceSet) spaceSet { return s | o }

func (s spaceSet) ids() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if s&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func setOf(ids []int) spaceSet {
	var s spaceSet
	for _, id := range ids {
		if id < 0 || id >= 64 {
			panic(fmt.Sprintf("compiler: space id %d out of range", id))
		}
		s |= 1 << id
	}
	return s
}

// funcState is the per-function analysis state.
type funcState struct {
	f *ir.Func
	// spaces[l] is the space set of region-valued local l; elems[l] the
	// space set of region ids stored in slots of the region l refers to.
	spaces []spaceSet
	elems  []spaceSet
}

// analyze computes Protos for every annotation instruction in the
// program.
func analyze(p *ir.Program, decls map[string]core.Decl) error {
	states := make(map[string]*funcState, len(p.Funcs))
	for name, f := range p.Funcs {
		st := &funcState{f: f, spaces: make([]spaceSet, f.NumLocals), elems: make([]spaceSet, f.NumLocals)}
		for i, t := range f.LocalTypes {
			st.spaces[i] = setOf(t.Spaces)
			st.elems[i] = setOf(t.ElemSpaces)
		}
		states[name] = st
	}
	// Interprocedural fixed point: propagate within functions and across
	// call edges until nothing changes. Sets only grow, so this
	// terminates.
	for changed := true; changed; {
		changed = false
		for _, st := range states {
			if st.propagate(st.f.Body, states) {
				changed = true
			}
		}
	}
	// Attach protocol sets to annotations.
	for _, st := range states {
		st.attach(st.f.Body, p)
	}
	return nil
}

// propagate runs one pass of the transfer functions over a body, looping
// locally to a fixed point so back edges (loops) are covered. It reports
// whether any set grew.
func (st *funcState) propagate(body []ir.Instr, states map[string]*funcState) bool {
	grew := false
	for localChange := true; localChange; {
		localChange = false
		if st.step(body, states, &localChange) {
			grew = true
		}
	}
	return grew
}

func (st *funcState) step(list []ir.Instr, states map[string]*funcState, changed *bool) bool {
	grew := false
	join := func(dst int, s, e spaceSet) {
		if dst < 0 {
			return
		}
		if ns := st.spaces[dst].union(s); ns != st.spaces[dst] {
			st.spaces[dst] = ns
			*changed = true
			grew = true
		}
		if ne := st.elems[dst].union(e); ne != st.elems[dst] {
			st.elems[dst] = ne
			*changed = true
			grew = true
		}
	}
	opSet := func(o ir.Operand) (spaceSet, spaceSet) {
		if o.IsConst {
			return 0, 0
		}
		return st.spaces[o.Local], st.elems[o.Local]
	}
	for i := range list {
		in := &list[i]
		switch in.Op {
		case ir.OpMove:
			s, e := opSet(in.A)
			join(in.Dst, s, e)
		case ir.OpMap:
			// The handle carries the region's space set.
			s, e := opSet(in.A)
			join(in.Dst, s, e)
		case ir.OpLoad, ir.OpSharedLoad:
			if in.ElemKind == ir.KRegion {
				// Loading a region id from a region's slots: the result
				// belongs to the elem-space of the source.
				_, e := opSet(in.A)
				join(in.Dst, e, 0)
			}
		case ir.OpCall:
			callee := states[in.Callee]
			if callee == nil {
				panic(fmt.Sprintf("compiler: call to unknown function %q", in.Callee))
			}
			for ai, arg := range in.Args {
				if ai >= len(callee.f.Params) {
					break
				}
				s, e := opSet(arg)
				if ns := callee.spaces[ai].union(s); ns != callee.spaces[ai] {
					callee.spaces[ai] = ns
					*changed = true
					grew = true
				}
				if ne := callee.elems[ai].union(e); ne != callee.elems[ai] {
					callee.elems[ai] = ne
					*changed = true
					grew = true
				}
			}
		case ir.OpGMalloc:
			join(in.Dst, setOf([]int{int(in.A.Const.I)}), 0)
		case ir.OpBcastID:
			s, e := opSet(in.Src)
			join(in.Dst, s, e)
		case ir.OpLoop, ir.OpIf:
			if st.step(in.Body, states, changed) {
				grew = true
			}
			if st.step(in.Else, states, changed) {
				grew = true
			}
		}
	}
	return grew
}

// attach writes the protocol sets onto annotation instructions.
func (st *funcState) attach(list []ir.Instr, p *ir.Program) {
	for i := range list {
		in := &list[i]
		if isAnnotation(in.Op) {
			var s spaceSet
			if !in.A.IsConst {
				s = st.spaces[in.A.Local]
			}
			in.Protos = protosFor(s, p)
		}
		st.attach(in.Body, p)
		st.attach(in.Else, p)
	}
}

// protosFor composes a space set with the program's space→protocol table.
func protosFor(s spaceSet, p *ir.Program) []string {
	seen := map[string]bool{}
	for _, id := range s.ids() {
		for _, proto := range p.SpaceProtos[id] {
			seen[proto] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
