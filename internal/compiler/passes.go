package compiler

import (
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// This file implements the three optimization passes of Section 4.2. In
// all passes, code is never moved past synchronization calls (barriers) or
// function calls.

// ---------------------------------------------------------------------
// Pass 1: moving calls out of loops.
//
// ACE_MAP and ACE_START_* calls with loop-invariant arguments move above
// the loop; the matching ACE_END_* calls move below it. A call is hoisted
// only if every protocol possibly governing it is optimizable.
// ---------------------------------------------------------------------

// loopInvariance processes a statement list, returning the rewritten list.
func loopInvariance(list []ir.Instr, decls map[string]core.Decl) []ir.Instr {
	var out []ir.Instr
	for _, in := range list {
		switch in.Op {
		case ir.OpLoop:
			// Innermost first, so inner preheaders become hoistable here.
			in.Body = loopInvariance(in.Body, decls)
			pre, post := hoistLoop(&in, decls)
			out = append(out, pre...)
			out = append(out, in)
			out = append(out, post...)
		case ir.OpIf:
			in.Body = loopInvariance(in.Body, decls)
			in.Else = loopInvariance(in.Else, decls)
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}
	return out
}

// hoistLoop extracts hoistable annotations from one loop, returning the
// preheader and postexit instruction lists.
func hoistLoop(loop *ir.Instr, decls map[string]core.Decl) (pre, post []ir.Instr) {
	if containsSync(loop.Body) {
		return nil, nil
	}
	assigned := map[int]bool{loop.Dst: true}
	collectAssigned(loop.Body, assigned)

	invariant := func(o ir.Operand) bool {
		return o.IsConst || !assigned[o.Local]
	}

	// Find hoistable maps in the loop's direct body.
	for idx := 0; idx < len(loop.Body); idx++ {
		in := loop.Body[idx]
		if in.Op != ir.OpMap || !invariant(in.A) || !optimizable(in.Protos, decls) {
			continue
		}
		h := in.Dst
		uses := handleUses(loop.Body, h, idx+1)
		if !uses.ok {
			continue
		}
		// Hoist the map itself.
		pre = append(pre, in)
		loop.Body = append(loop.Body[:idx], loop.Body[idx+1:]...)
		idx--
		// Hoist the sections when they are uniformly read or uniformly
		// write (the paper leaves mixed-mode merging to the protocol
		// designer — Section 4.2, footnote 1).
		if uses.reads > 0 && uses.writes == 0 {
			loop.Body = removeSections(loop.Body, h, ir.OpStartRead, ir.OpEndRead)
			pre = append(pre, ir.Instr{Op: ir.OpStartRead, Dst: -1, A: ir.L(h), Protos: in.Protos})
			post = append(post, ir.Instr{Op: ir.OpEndRead, Dst: -1, A: ir.L(h), Protos: in.Protos})
		} else if uses.writes > 0 && uses.reads == 0 {
			loop.Body = removeSections(loop.Body, h, ir.OpStartWrite, ir.OpEndWrite)
			pre = append(pre, ir.Instr{Op: ir.OpStartWrite, Dst: -1, A: ir.L(h), Protos: in.Protos})
			post = append(post, ir.Instr{Op: ir.OpEndWrite, Dst: -1, A: ir.L(h), Protos: in.Protos})
		}
	}
	return pre, post
}

// containsSync reports whether a subtree contains a barrier or a call
// (synchronization boundaries for code motion).
func containsSync(list []ir.Instr) bool {
	for _, in := range list {
		switch in.Op {
		case ir.OpBarrier, ir.OpCall, ir.OpRet, ir.OpBcastID, ir.OpChangeProto, ir.OpGMalloc, ir.OpLock, ir.OpUnlock:
			return true
		}
		if containsSync(in.Body) || containsSync(in.Else) {
			return true
		}
	}
	return false
}

// collectAssigned records every local assigned in a subtree.
func collectAssigned(list []ir.Instr, set map[int]bool) {
	for _, in := range list {
		if in.Dst >= 0 {
			set[in.Dst] = true
		}
		collectAssigned(in.Body, set)
		collectAssigned(in.Else, set)
	}
}

// handleUsage summarizes how a handle local is used inside a subtree.
type handleUsage struct {
	ok            bool
	reads, writes int
}

// handleUses inspects every use of handle h in the subtree after position
// start. The handle is hoistable only if it is used exclusively by
// section brackets and element accesses (no unmap, no reassignment, no
// escapes).
func handleUses(list []ir.Instr, h int, start int) handleUsage {
	u := handleUsage{ok: true}
	var walk func([]ir.Instr, int)
	walk = func(l []ir.Instr, from int) {
		for i := from; i < len(l); i++ {
			in := l[i]
			if in.Dst == h {
				u.ok = false
				return
			}
			usesH := operandIs(in.A, h) || operandIs(in.B, h) || operandIs(in.Src, h) || argsUse(in.Args, h)
			if usesH {
				switch in.Op {
				case ir.OpStartRead, ir.OpEndRead:
					u.reads++
				case ir.OpStartWrite, ir.OpEndWrite:
					u.writes++
				case ir.OpLoad, ir.OpStore:
					// plain accesses through the handle: fine
				default:
					u.ok = false
					return
				}
			}
			walk(in.Body, 0)
			walk(in.Else, 0)
			if !u.ok {
				return
			}
		}
	}
	walk(list, start)
	return u
}

func operandIs(o ir.Operand, local int) bool { return !o.IsConst && o.Local == local }

func argsUse(args []ir.Operand, local int) bool {
	for _, a := range args {
		if operandIs(a, local) {
			return true
		}
	}
	return false
}

// removeSections deletes every start/end bracket on handle h in the
// subtree, returning the rewritten list.
func removeSections(list []ir.Instr, h int, startOp, endOp ir.Op) []ir.Instr {
	out := make([]ir.Instr, 0, len(list))
	for _, in := range list {
		if (in.Op == startOp || in.Op == endOp) && operandIs(in.A, h) {
			continue
		}
		in.Body = removeSections(in.Body, h, startOp, endOp)
		in.Else = removeSections(in.Else, h, startOp, endOp)
		out = append(out, in)
	}
	return out
}

// ---------------------------------------------------------------------
// Pass 2: merging redundant protocol calls.
//
// Within each straight-line segment, an ACE_MAP whose argument is already
// mapped reuses the earlier handle (available-expression reasoning,
// Figure 6), and back-to-back sections on the same handle with the same
// mode merge: the highest START and the lowest END survive.
// ---------------------------------------------------------------------

func mergeCalls(list []ir.Instr, decls map[string]core.Decl) []ir.Instr {
	// Recurse into nested bodies first.
	for i := range list {
		in := &list[i]
		in.Body = mergeCalls(in.Body, decls)
		in.Else = mergeCalls(in.Else, decls)
	}
	out := make([]ir.Instr, 0, len(list))
	type availEntry struct{ handle int }
	avail := map[int]availEntry{} // base local -> handle
	alias := map[int]int{}        // deleted handle -> surviving handle
	// Availability is conservative and resets at control boundaries;
	// aliases are SSA renames of single-assignment handle locals and stay
	// valid for the rest of the list.
	reset := func() {
		avail = map[int]availEntry{}
	}
	sub := func(o ir.Operand) ir.Operand {
		if !o.IsConst {
			if to, ok := alias[o.Local]; ok {
				return ir.L(to)
			}
		}
		return o
	}
	for _, in := range list {
		in.A, in.B, in.Src = sub(in.A), sub(in.B), sub(in.Src)
		for ai := range in.Args {
			in.Args[ai] = sub(in.Args[ai])
		}
		switch {
		case in.Op == ir.OpMap && !in.A.IsConst:
			if e, ok := avail[in.A.Local]; ok && optimizable(in.Protos, decls) {
				alias[in.Dst] = e.handle
				continue // redundant map deleted
			}
			avail[in.A.Local] = availEntry{handle: in.Dst}
			delete(alias, in.Dst)
			out = append(out, in)
		case in.Op == ir.OpLoop || in.Op == ir.OpIf || in.Op == ir.OpBarrier || in.Op == ir.OpCall || in.Op == ir.OpRet || in.Op == ir.OpBcastID || in.Op == ir.OpChangeProto || in.Op == ir.OpGMalloc || in.Op == ir.OpLock || in.Op == ir.OpUnlock:
			// Handle locals are single-assignment, so aliases introduced
			// by deleted maps may be applied through nested bodies before
			// the availability state resets at this control boundary.
			renameDeep(in.Body, alias)
			renameDeep(in.Else, alias)
			reset()
			out = append(out, in)
		default:
			if in.Dst >= 0 {
				// A redefinition kills availability keyed on that local
				// and any alias to it.
				delete(avail, in.Dst)
				delete(alias, in.Dst)
			}
			out = append(out, in)
		}
	}
	return mergeSections(out, decls)
}

// renameDeep rewrites every operand in a subtree through the alias map.
func renameDeep(list []ir.Instr, alias map[int]int) {
	if len(alias) == 0 {
		return
	}
	sub := func(o ir.Operand) ir.Operand {
		if !o.IsConst {
			if to, ok := alias[o.Local]; ok {
				return ir.L(to)
			}
		}
		return o
	}
	for i := range list {
		in := &list[i]
		in.A, in.B, in.Src = sub(in.A), sub(in.B), sub(in.Src)
		for ai := range in.Args {
			in.Args[ai] = sub(in.Args[ai])
		}
		renameDeep(in.Body, alias)
		renameDeep(in.Else, alias)
	}
}

// mergeSections deletes END/START pairs of the same mode on the same
// handle within a straight-line run.
func mergeSections(list []ir.Instr, decls map[string]core.Decl) []ir.Instr {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(list); i++ {
			in := list[i]
			var startOp ir.Op
			switch in.Op {
			case ir.OpEndRead:
				startOp = ir.OpStartRead
			case ir.OpEndWrite:
				startOp = ir.OpStartWrite
			default:
				continue
			}
			if !optimizable(in.Protos, decls) {
				continue
			}
			// Find the next use of this handle; if it is a matching
			// START, delete the pair.
			h := in.A.Local
			for j := i + 1; j < len(list); j++ {
				nxt := list[j]
				if nxt.Op == ir.OpLoop || nxt.Op == ir.OpIf || nxt.Op == ir.OpBarrier || nxt.Op == ir.OpCall || nxt.Op == ir.OpRet || nxt.Op == ir.OpBcastID || nxt.Op == ir.OpChangeProto || nxt.Op == ir.OpGMalloc || nxt.Op == ir.OpLock || nxt.Op == ir.OpUnlock {
					break
				}
				uses := operandIs(nxt.A, h) || operandIs(nxt.B, h) || operandIs(nxt.Src, h) || nxt.Dst == h
				if !uses {
					continue
				}
				if nxt.Op == startOp && optimizable(nxt.Protos, decls) {
					list = append(list[:j], list[j+1:]...)
					list = append(list[:i], list[i+1:]...)
					changed = true
				}
				break
			}
			if changed {
				break
			}
		}
	}
	return list
}

// ---------------------------------------------------------------------
// Pass 3: direct dispatch.
//
// When the analysis proves a unique protocol for an annotation, the
// dispatch through the space is replaced by a direct call to the protocol
// routine; calls to routines the configuration file declares null are
// removed entirely.
// ---------------------------------------------------------------------

func directDispatch(list []ir.Instr, decls map[string]core.Decl) []ir.Instr {
	out := make([]ir.Instr, 0, len(list))
	for _, in := range list {
		in.Body = directDispatch(in.Body, decls)
		in.Else = directDispatch(in.Else, decls)
		if isAnnotation(in.Op) && len(in.Protos) == 1 {
			d, ok := decls[in.Protos[0]]
			if ok {
				if d.Null.Has(annotationPoint(in.Op)) && in.Op != ir.OpMap {
					// A null handler: the call disappears. ACE_MAP is
					// kept even when the protocol's map hook is null —
					// the runtime still needs the handle translation —
					// but is bound directly.
					continue
				}
				in.Direct = true
				in.DirectProto = d.Name
				// If this bracket's partner is null (and therefore
				// deleted), the survivor becomes a bare protocol call:
				// the runtime's section pairing bookkeeping is skipped,
				// as in the paper's runtime, which kept none.
				if pp, paired := partnerPoint(in.Op); paired && d.Null.Has(pp) {
					in.Bare = true
				}
			}
		}
		out = append(out, in)
	}
	return out
}

// partnerPoint returns the matching bracket point for a section
// annotation.
func partnerPoint(op ir.Op) (core.Point, bool) {
	switch op {
	case ir.OpStartRead:
		return core.PointEndRead, true
	case ir.OpEndRead:
		return core.PointStartRead, true
	case ir.OpStartWrite:
		return core.PointEndWrite, true
	case ir.OpEndWrite:
		return core.PointStartWrite, true
	}
	return 0, false
}
