// Package compiler implements the Ace compiler's middle end: it lowers
// shared accesses to runtime annotations (ACE_MAP, ACE_START_READ, ...,
// Figure 5 of the paper) and then optimizes them with the three passes of
// Section 4.2 — moving calls out of loops (LI), merging redundant protocol
// calls (MC), and direct dispatch with null-handler elimination (DC) — all
// gated by a space/protocol dataflow analysis and the per-protocol
// "optimizable" flag from the system configuration file.
package compiler

import (
	"fmt"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
)

// Level selects the cumulative optimization level, matching Table 4's
// rows.
type Level int

// The optimization levels.
const (
	LevelBase Level = iota // annotations only
	LevelLI                // + loop invariance
	LevelMC                // + merging redundant calls
	LevelDC                // + direct dispatch / null-handler elimination
)

func (l Level) String() string {
	switch l {
	case LevelBase:
		return "base"
	case LevelLI:
		return "LI"
	case LevelMC:
		return "LI+MC"
	case LevelDC:
		return "LI+MC+DC"
	}
	return "?"
}

// Compile lowers and optimizes a program at the given level. decls is the
// compiler's view of the protocol registry (the system configuration
// file). The input program is not modified.
func Compile(p *ir.Program, decls []core.Decl, lvl Level) (*ir.Program, error) {
	byName := make(map[string]core.Decl, len(decls))
	for _, d := range decls {
		byName[d.Name] = d
	}
	out := p.Clone()
	for _, f := range out.Funcs {
		f.Body = annotate(f, f.Body)
	}
	if err := analyze(out, byName); err != nil {
		return nil, err
	}
	if lvl >= LevelLI {
		for _, f := range out.Funcs {
			f.Body = loopInvariance(f.Body, byName)
		}
	}
	if lvl >= LevelMC {
		for _, f := range out.Funcs {
			f.Body = mergeCalls(f.Body, byName)
		}
	}
	if lvl >= LevelDC {
		for _, f := range out.Funcs {
			f.Body = directDispatch(f.Body, byName)
		}
	}
	return out, nil
}

// AnnotationCounts tallies the static annotation instructions in a
// program, for reporting and golden tests.
func AnnotationCounts(p *ir.Program) map[string]int {
	counts := map[string]int{}
	var walk func([]ir.Instr)
	walk = func(list []ir.Instr) {
		for _, in := range list {
			switch in.Op {
			case ir.OpMap:
				counts["map"]++
			case ir.OpUnmap:
				counts["unmap"]++
			case ir.OpStartRead:
				counts["start_read"]++
			case ir.OpEndRead:
				counts["end_read"]++
			case ir.OpStartWrite:
				counts["start_write"]++
			case ir.OpEndWrite:
				counts["end_write"]++
			}
			walk(in.Body)
			walk(in.Else)
		}
	}
	for _, f := range p.Funcs {
		walk(f.Body)
	}
	return counts
}

// annotate lowers SharedLoad/SharedStore to runtime annotation sequences,
// following the translation process of Figure 5:
//
//	t1 = ACE_MAP(base); ACE_START_READ(t1); t2 = t1[i]; ACE_END_READ(t1)
func annotate(f *ir.Func, list []ir.Instr) []ir.Instr {
	var out []ir.Instr
	for _, in := range list {
		switch in.Op {
		case ir.OpSharedLoad:
			h := newLocal(f, ir.Type{Kind: ir.KHandle})
			out = append(out,
				ir.Instr{Op: ir.OpMap, Dst: h, A: in.A},
				ir.Instr{Op: ir.OpStartRead, Dst: -1, A: ir.L(h)},
				ir.Instr{Op: ir.OpLoad, Dst: in.Dst, A: ir.L(h), B: in.B, ElemKind: in.ElemKind},
				ir.Instr{Op: ir.OpEndRead, Dst: -1, A: ir.L(h)},
			)
		case ir.OpSharedStore:
			h := newLocal(f, ir.Type{Kind: ir.KHandle})
			out = append(out,
				ir.Instr{Op: ir.OpMap, Dst: h, A: in.A},
				ir.Instr{Op: ir.OpStartWrite, Dst: -1, A: ir.L(h)},
				ir.Instr{Op: ir.OpStore, Dst: -1, A: ir.L(h), B: in.B, Src: in.Src, ElemKind: in.ElemKind},
				ir.Instr{Op: ir.OpEndWrite, Dst: -1, A: ir.L(h)},
			)
		case ir.OpLoop, ir.OpIf:
			in.Body = annotate(f, in.Body)
			in.Else = annotate(f, in.Else)
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}
	return out
}

func newLocal(f *ir.Func, t ir.Type) int {
	slot := f.NumLocals
	f.NumLocals++
	f.LocalTypes = append(f.LocalTypes, t)
	return slot
}

// isAnnotation reports whether the op is a protocol-call annotation.
func isAnnotation(op ir.Op) bool {
	switch op {
	case ir.OpMap, ir.OpUnmap, ir.OpStartRead, ir.OpEndRead, ir.OpStartWrite, ir.OpEndWrite:
		return true
	}
	return false
}

// annotationPoint maps an annotation op to its protocol invocation point.
func annotationPoint(op ir.Op) core.Point {
	switch op {
	case ir.OpMap:
		return core.PointMap
	case ir.OpUnmap:
		return core.PointUnmap
	case ir.OpStartRead:
		return core.PointStartRead
	case ir.OpEndRead:
		return core.PointEndRead
	case ir.OpStartWrite:
		return core.PointStartWrite
	case ir.OpEndWrite:
		return core.PointEndWrite
	}
	panic(fmt.Sprintf("compiler: op %d is not an annotation", op))
}

// optimizable reports whether every possible protocol of the annotation
// permits compiler optimization. An empty set means the analysis could not
// bound the protocols: never optimizable.
func optimizable(protos []string, decls map[string]core.Decl) bool {
	if len(protos) == 0 {
		return false
	}
	for _, name := range protos {
		d, ok := decls[name]
		if !ok || !d.Optimizable {
			return false
		}
	}
	return true
}
