package compiler

import (
	"strings"
	"testing"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/proto"
)

func decls() []core.Decl { return proto.NewRegistry().Decls() }

// singleSpaceProgram builds a one-function program with one space.
func singleSpaceProgram(f *ir.Func, protoName string) *ir.Program {
	return &ir.Program{
		Funcs:       map[string]*ir.Func{f.Name: f},
		SpaceProtos: map[int][]string{0: {protoName}},
	}
}

func regionParam() ir.Type { return ir.Type{Kind: ir.KRegion, Spaces: []int{0}} }

// TestAnnotateFigure5 checks the base translation of Figure 5: a shared
// load becomes MAP / START_READ / load / END_READ, a store the write
// variants.
func TestAnnotateFigure5(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(1), ir.L(v))
	b.Ret(ir.L(v))
	prog := singleSpaceProgram(b.Func(), "sc")
	out, err := Compile(prog, decls(), LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	text := out.Funcs["f"].String()
	for _, want := range []string{"ACE_MAP", "ACE_START_READ", "ACE_END_READ", "ACE_START_WRITE", "ACE_END_WRITE"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %s in:\n%s", want, text)
		}
	}
	counts := AnnotationCounts(out)
	if counts["map"] != 2 || counts["start_read"] != 1 || counts["start_write"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// TestLoopInvarianceHoists checks the LI pass: an optimizable access with
// a loop-invariant base moves out of the loop.
func TestLoopInvarianceHoists(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("f", regionParam(), ir.Type{Kind: ir.KInt})
		sum := b.Const(ir.Float(0))
		i := b.Local(ir.KInt)
		b.Loop(i, ir.CI(0), ir.L(1), func() {
			v := b.SharedLoad(ir.KFloat, ir.L(0), ir.L(i))
			b.BinTo(sum, ir.Add, ir.L(sum), ir.L(v))
		})
		b.Ret(ir.L(sum))
		return b.Func()
	}
	// Optimizable protocol: hoisted.
	out, err := Compile(singleSpaceProgram(build(), "null"), decls(), LevelLI)
	if err != nil {
		t.Fatal(err)
	}
	body := out.Funcs["f"].Body
	// Expect: const, map, start_read, loop, end_read, ret.
	var sawMapBeforeLoop, sawLoop bool
	for _, in := range body {
		switch in.Op {
		case ir.OpMap:
			if !sawLoop {
				sawMapBeforeLoop = true
			}
		case ir.OpLoop:
			sawLoop = true
			for _, inner := range in.Body {
				if inner.Op == ir.OpMap || inner.Op == ir.OpStartRead || inner.Op == ir.OpEndRead {
					t.Errorf("annotation %v left inside loop:\n%s", inner.Op, out.Funcs["f"].String())
				}
			}
		}
	}
	if !sawMapBeforeLoop {
		t.Errorf("map not hoisted:\n%s", out.Funcs["f"].String())
	}

	// Non-optimizable protocol (sc): nothing moves.
	out2, err := Compile(singleSpaceProgram(build(), "sc"), decls(), LevelLI)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range out2.Funcs["f"].Body {
		if in.Op == ir.OpLoop {
			found := false
			for _, inner := range in.Body {
				if inner.Op == ir.OpMap {
					found = true
				}
			}
			if !found {
				t.Errorf("sc access should not be hoisted:\n%s", out2.Funcs["f"].String())
			}
		}
	}
}

// TestLoopInvarianceRespectsBarriers: no code motion past synchronization.
func TestLoopInvarianceRespectsBarriers(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	i := b.Local(ir.KInt)
	b.Loop(i, ir.CI(0), ir.CI(4), func() {
		v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
		_ = v
		b.Barrier(0)
	})
	b.Ret(ir.CF(0))
	out, err := Compile(singleSpaceProgram(b.Func(), "null"), decls(), LevelLI)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpLoop {
			hasMap := false
			for _, inner := range in.Body {
				if inner.Op == ir.OpMap {
					hasMap = true
				}
			}
			if !hasMap {
				t.Errorf("map hoisted past a barrier:\n%s", out.Funcs["f"].String())
			}
		}
	}
}

// TestMergeCallsFigure6 reproduces the Figure 6 transformation: two write
// sections on the same base merge, the second map is deleted and the
// highest START / lowest END survive.
func TestMergeCallsFigure6(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(0), ir.CF(1)) // *x = y
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(1), ir.CF(4)) // *x = 4
	b.Ret(ir.CF(0))
	out, err := Compile(singleSpaceProgram(b.Func(), "null"), decls(), LevelMC)
	if err != nil {
		t.Fatal(err)
	}
	counts := AnnotationCounts(out)
	if counts["map"] != 1 {
		t.Errorf("maps = %d, want 1 (redundant map removed):\n%s", counts["map"], out.Funcs["f"].String())
	}
	if counts["start_write"] != 1 || counts["end_write"] != 1 {
		t.Errorf("sections = %d/%d, want 1/1:\n%s", counts["start_write"], counts["end_write"], out.Funcs["f"].String())
	}
}

// TestMergeCallsStopsAtBarrier: availability is not assumed across
// synchronization.
func TestMergeCallsStopsAtBarrier(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(0), ir.CF(1))
	b.Barrier(0)
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(1), ir.CF(2))
	b.Ret(ir.CF(0))
	out, err := Compile(singleSpaceProgram(b.Func(), "null"), decls(), LevelMC)
	if err != nil {
		t.Fatal(err)
	}
	if counts := AnnotationCounts(out); counts["map"] != 2 {
		t.Errorf("maps = %d, want 2 (no merging across barrier)", counts["map"])
	}
}

// TestMergeNotAppliedForNonOptimizable: sc sections never merge.
func TestMergeNotAppliedForNonOptimizable(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(0), ir.CF(1))
	b.SharedStore(ir.KFloat, ir.L(0), ir.CI(1), ir.CF(4))
	b.Ret(ir.CF(0))
	out, err := Compile(singleSpaceProgram(b.Func(), "sc"), decls(), LevelMC)
	if err != nil {
		t.Fatal(err)
	}
	if counts := AnnotationCounts(out); counts["start_write"] != 2 {
		t.Errorf("sc sections merged: %v", counts)
	}
}

// TestDirectDispatchRemovesNullHandlers: with a unique protocol whose
// points are null, the calls disappear; the map survives as a direct call.
func TestDirectDispatchRemovesNullHandlers(t *testing.T) {
	b := ir.NewBuilder("f", regionParam())
	v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	b.Ret(ir.L(v))
	out, err := Compile(singleSpaceProgram(b.Func(), "null"), decls(), LevelDC)
	if err != nil {
		t.Fatal(err)
	}
	counts := AnnotationCounts(out)
	if counts["start_read"] != 0 || counts["end_read"] != 0 {
		t.Errorf("null handlers not removed: %v\n%s", counts, out.Funcs["f"].String())
	}
	if counts["map"] != 1 {
		t.Errorf("map should survive: %v", counts)
	}
	// And the surviving map is bound directly.
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpMap && (!in.Direct || in.DirectProto != "null") {
			t.Errorf("map not directly bound: %+v", in)
		}
	}
}

// TestDirectDispatchBarePartners: when one bracket of a pair is null, the
// survivor becomes a bare call.
func TestDirectDispatchBarePartners(t *testing.T) {
	// staticupdate: end_read null, start_read real.
	b := ir.NewBuilder("f", regionParam())
	v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	b.Ret(ir.L(v))
	out, err := Compile(singleSpaceProgram(b.Func(), "staticupdate"), decls(), LevelDC)
	if err != nil {
		t.Fatal(err)
	}
	foundBareStart := false
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpEndRead {
			t.Errorf("null end_read survived")
		}
		if in.Op == ir.OpStartRead {
			if !in.Bare {
				t.Errorf("start_read should be bare when end_read is removed")
			}
			foundBareStart = true
		}
	}
	if !foundBareStart {
		t.Fatal("start_read missing")
	}
}

// TestDirectDispatchNeedsUniqueProtocol: with two possible protocols,
// dispatch stays indirect.
func TestDirectDispatchNeedsUniqueProtocol(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KRegion, Spaces: []int{0, 1}})
	v := b.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	b.Ret(ir.L(v))
	prog := &ir.Program{
		Funcs:       map[string]*ir.Func{"f": b.Func()},
		SpaceProtos: map[int][]string{0: {"null"}, 1: {"update"}},
	}
	out, err := Compile(prog, decls(), LevelDC)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpMap && in.Direct {
			t.Errorf("map bound directly despite two candidate protocols")
		}
	}
	if counts := AnnotationCounts(out); counts["start_read"] != 1 {
		t.Errorf("ambiguous access must keep its calls: %v", counts)
	}
}

// TestAnalysisPropagatesThroughRegionLoads: a region id loaded from a
// region's slots carries the element space (Table 1's shared pointers).
func TestAnalysisPropagatesThroughRegionLoads(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KRegion, Spaces: []int{0}, ElemSpaces: []int{1}})
	inner := b.SharedLoad(ir.KRegion, ir.L(0), ir.CI(0))
	v := b.SharedLoad(ir.KFloat, ir.L(inner), ir.CI(0))
	b.Ret(ir.L(v))
	prog := &ir.Program{
		Funcs:       map[string]*ir.Func{"f": b.Func()},
		SpaceProtos: map[int][]string{0: {"null"}, 1: {"sc"}},
	}
	out, err := Compile(prog, decls(), LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	// The access through the loaded id must be attributed to space 1's
	// protocol (sc), the outer one to space 0 (null).
	var protos [][]string
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpMap {
			protos = append(protos, in.Protos)
		}
	}
	if len(protos) != 2 {
		t.Fatalf("expected 2 maps, got %d", len(protos))
	}
	if len(protos[0]) != 1 || protos[0][0] != "null" {
		t.Errorf("outer access protocols = %v, want [null]", protos[0])
	}
	if len(protos[1]) != 1 || protos[1][0] != "sc" {
		t.Errorf("inner access protocols = %v, want [sc]", protos[1])
	}
}

// TestAnalysisInterprocedural: space sets flow through calls.
func TestAnalysisInterprocedural(t *testing.T) {
	callee := ir.NewBuilder("reader", ir.Type{Kind: ir.KRegion})
	v := callee.SharedLoad(ir.KFloat, ir.L(0), ir.CI(0))
	callee.Ret(ir.L(v))

	caller := ir.NewBuilder("f", ir.Type{Kind: ir.KRegion, Spaces: []int{1}})
	dst := caller.Local(ir.KFloat)
	caller.Call(dst, "reader", ir.L(0))
	caller.Ret(ir.L(dst))

	prog := &ir.Program{
		Funcs:       map[string]*ir.Func{"reader": callee.Func(), "f": caller.Func()},
		SpaceProtos: map[int][]string{1: {"update"}},
	}
	out, err := Compile(prog, decls(), LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range out.Funcs["reader"].Body {
		if in.Op == ir.OpMap {
			if len(in.Protos) != 1 || in.Protos[0] != "update" {
				t.Errorf("callee access protocols = %v, want [update]", in.Protos)
			}
		}
	}
}

// TestUnknownSpaceNeverOptimized: an access whose space the analysis
// cannot bound keeps all its calls at every level.
func TestUnknownSpaceNeverOptimized(t *testing.T) {
	b := ir.NewBuilder("f", ir.Type{Kind: ir.KRegion}) // no declared spaces
	i := b.Local(ir.KInt)
	b.Loop(i, ir.CI(0), ir.CI(4), func() {
		v := b.SharedLoad(ir.KFloat, ir.L(0), ir.L(i))
		_ = v
	})
	b.Ret(ir.CF(0))
	out, err := Compile(singleSpaceProgram(b.Func(), "null"), decls(), LevelDC)
	if err != nil {
		t.Fatal(err)
	}
	counts := AnnotationCounts(out)
	if counts["map"] != 1 || counts["start_read"] != 1 || counts["end_read"] != 1 {
		t.Errorf("unknown-space access was optimized: %v\n%s", counts, out.Funcs["f"].String())
	}
	for _, in := range out.Funcs["f"].Body {
		if in.Op == ir.OpMap {
			t.Errorf("unknown-space map hoisted out of loop")
		}
	}
}
