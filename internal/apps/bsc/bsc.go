// Package bsc implements a Blocked Sparse Cholesky benchmark in the style
// of Rothberg's supernodal factorization: a banded symmetric positive
// definite matrix is factored by block columns, each block column a single
// large shared region (the paper's coarse-grained benchmark).
//
// The paper's input (Tk15.O from the sparse-matrix collection) is not
// redistributable; we substitute a deterministic banded SPD matrix, which
// preserves the behaviour that matters to the runtime: block columns are
// written only by the processor that created them, read in bulk by the
// owners of dependent columns, and the unit of transfer is the whole
// (large) region — so bulk transfer dominates and write-side protocol
// optimizations help only marginally (Section 5.2).
//
// The application-specific protocol is "homewrite": writes are home-local
// and free of coherence actions; readers pull whole columns on demand.
package bsc

import (
	"fmt"
	"math"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// Config parameterizes the benchmark.
type Config struct {
	// Blocks is the number of block columns; BlockSize their width. The
	// matrix is n×n with n = Blocks*BlockSize.
	Blocks    int
	BlockSize int
	// Bandwidth is the half-bandwidth in blocks: column k updates
	// columns k+1..k+Bandwidth (the sparse structure).
	Bandwidth int
	Seed      int64

	// Proto, if non-empty, is the protocol for the matrix space
	// ("homewrite"). Empty runs on the default space.
	Proto string
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Blocks: 12, BlockSize: 16, Bandwidth: 4, Seed: 3}
}

// Run executes the factorization on rt. The checksum is the sum of the
// factor's entries.
func Run(rt rtiface.RT, cfg Config) (apputil.Result, error) {
	res := apputil.Result{Name: "bsc", Runtime: rt.Name(), Protocols: protoLabel(cfg.Proto)}
	if cfg.Blocks < 2 || cfg.BlockSize < 1 || cfg.Bandwidth < 1 {
		return res, fmt.Errorf("bsc: bad config %+v", cfg)
	}
	srt, _ := rt.(rtiface.SpaceRT)
	hasSpaces := srt != nil &&
		rt.Capabilities().Has(rtiface.CapSpaces|rtiface.CapCustomProtocols)
	useSpace := cfg.Proto != "" && hasSpaces
	if cfg.Proto != "" && !hasSpaces {
		return res, fmt.Errorf("bsc: runtime %s has no spaces for protocol %q", rt.Name(), cfg.Proto)
	}
	var space rtiface.SpaceID
	if useSpace {
		var err error
		if space, err = srt.NewSpace(cfg.Proto); err != nil {
			return res, err
		}
	}

	B, bs := cfg.Blocks, cfg.BlockSize
	n := B * bs

	// Column k is owned by processor k mod P (round robin for balance as
	// the active window shrinks) and stored as one region holding rows
	// k*bs..n-1 of the block column (the lower-triangular part).
	owner := func(k int) int { return k % rt.Procs() }
	colRows := func(k int) int { return n - k*bs }

	ids := make([]core.RegionID, B)
	var myIDs []core.RegionID
	for k := 0; k < B; k++ {
		if owner(k) == rt.ID() {
			size := colRows(k) * bs * 8
			var id core.RegionID
			if useSpace {
				id = srt.MallocIn(space, size)
			} else {
				id = rt.Malloc(size)
			}
			myIDs = append(myIDs, id)
		}
	}
	// Distribute ids: each owner broadcasts its column ids in turn.
	for p := 0; p < rt.Procs(); p++ {
		var cnt int
		for k := 0; k < B; k++ {
			if owner(k) == p {
				cnt++
			}
		}
		var got []core.RegionID
		if p == rt.ID() {
			got = rt.BroadcastIDs(p, myIDs)
		} else {
			got = rt.BroadcastIDs(p, make([]core.RegionID, cnt))
		}
		i := 0
		for k := 0; k < B; k++ {
			if owner(k) == p {
				ids[k] = got[i]
				i++
			}
		}
	}
	// Initialize owned columns from the banded SPD matrix. Regions are
	// mapped around each use.
	for k := 0; k < B; k++ {
		if owner(k) != rt.ID() {
			continue
		}
		h := rt.Map(ids[k])
		rt.StartWrite(h)
		d := h.Data()
		rows := colRows(k)
		for c := 0; c < bs; c++ {
			col := k*bs + c
			for r := 0; r < rows; r++ {
				row := k*bs + r
				d.SetFloat64(c*rows+r, matA(row, col, n, cfg))
			}
		}
		rt.EndWrite(h)
		rt.Unmap(h)
	}
	barrier := func() {
		if useSpace {
			srt.BarrierSpace(space)
		} else {
			rt.Barrier()
		}
	}
	barrier()

	start := time.Now()
	// Right-looking blocked factorization.
	colBuf := make([]float64, n*bs)
	for k := 0; k < B; k++ {
		if owner(k) == rt.ID() {
			h := rt.Map(ids[k])
			factorColumn(rt, h, colRows(k), bs)
			rt.Unmap(h)
		}
		barrier()
		// Owners of dependent columns read column k in bulk and update.
		last := min(B-1, k+cfg.Bandwidth)
		needsIt := false
		for j := k + 1; j <= last; j++ {
			if owner(j) == rt.ID() {
				needsIt = true
			}
		}
		if needsIt {
			rows := colRows(k)
			h := rt.Map(ids[k])
			rt.StartRead(h)
			d := h.Data()
			for i := 0; i < rows*bs; i++ {
				colBuf[i] = d.Float64(i)
			}
			rt.EndRead(h)
			rt.Unmap(h)
			for j := k + 1; j <= last; j++ {
				if owner(j) == rt.ID() {
					hj := rt.Map(ids[j])
					updateColumn(rt, hj, colBuf, k, j, bs, n)
					rt.Unmap(hj)
				}
			}
		}
		barrier()
	}
	res.Iters = 1
	res.Total = time.Duration(rt.AllReduceInt64(core.OpMax, int64(time.Since(start))))
	res.TimePerIter = res.Total

	// Checksum over owned factor entries.
	sum := 0.0
	for k := 0; k < B; k++ {
		if owner(k) != rt.ID() {
			continue
		}
		h := rt.Map(ids[k])
		rt.StartRead(h)
		d := h.Data()
		for i := 0; i < colRows(k)*bs; i++ {
			sum += d.Float64(i)
		}
		rt.EndRead(h)
		rt.Unmap(h)
	}
	res.Checksum = rt.AllReduceFloat64(core.OpSum, sum)
	rt.Barrier()
	return res, nil
}

// factorColumn factors the diagonal block in place (dense Cholesky) and
// applies the triangular solve to the subdiagonal rows.
func factorColumn(rt rtiface.RT, h rtiface.Handle, rows, bs int) {
	rt.StartWrite(h)
	d := h.Data()
	at := func(r, c int) float64 { return d.Float64(c*rows + r) }
	set := func(r, c int, v float64) { d.SetFloat64(c*rows+r, v) }
	// Cholesky of the bs×bs diagonal block.
	for c := 0; c < bs; c++ {
		sum := at(c, c)
		for m := 0; m < c; m++ {
			sum -= at(c, m) * at(c, m)
		}
		if sum <= 0 {
			panic(fmt.Sprintf("bsc: matrix not positive definite at %d (%g)", c, sum))
		}
		diag := math.Sqrt(sum)
		set(c, c, diag)
		for r := c + 1; r < rows; r++ {
			sum := at(r, c)
			for m := 0; m < c; m++ {
				sum -= at(r, m) * at(c, m)
			}
			set(r, c, sum/diag)
		}
		// Zero the strictly upper part of the diagonal block for a clean
		// factor.
		for r := 0; r < c; r++ {
			set(r, c, 0)
		}
	}
	rt.EndWrite(h)
}

// updateColumn applies the rank-bs update from factored column k to column
// j: A_j -= L_jk * L_(rows of j),k^T.
func updateColumn(rt rtiface.RT, h rtiface.Handle, colK []float64, k, j, bs, n int) {
	rowsK := n - k*bs
	rowsJ := n - j*bs
	kAt := func(r, c int) float64 { return colK[c*rowsK+r] } // r relative to k*bs
	rt.StartWrite(h)
	d := h.Data()
	// For column j, global rows j*bs..n-1; the update uses L(j-block
	// rows, k) and L(target rows, k).
	off := (j - k) * bs // row offset of j's block within column k
	for c := 0; c < bs; c++ {
		for r := 0; r < rowsJ; r++ {
			acc := d.Float64(c*rowsJ + r)
			for m := 0; m < bs; m++ {
				acc -= kAt(off+r, m) * kAt(off+c, m)
			}
			d.SetFloat64(c*rowsJ+r, acc)
		}
	}
	rt.EndWrite(h)
}

// matA defines the banded SPD input matrix.
func matA(row, col, n int, cfg Config) float64 {
	if row == col {
		return float64(n) + 10
	}
	band := cfg.Bandwidth * cfg.BlockSize
	dd := row - col
	if dd < 0 {
		dd = -dd
	}
	if dd > band {
		return 0
	}
	// A deterministic, symmetric off-diagonal pattern, small enough to
	// keep the matrix diagonally dominant (hence SPD).
	return math.Sin(float64(row*31+col*17)) * 0.5
}

// SequentialFactor computes the same factorization sequentially (dense,
// lower triangle) for verification, returning the sum of factor entries.
func SequentialFactor(cfg Config) float64 {
	n := cfg.Blocks * cfg.BlockSize
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			a[i][j] = matA(i, j, n, cfg)
		}
	}
	for c := 0; c < n; c++ {
		sum := a[c][c]
		for m := 0; m < c; m++ {
			sum -= a[c][m] * a[c][m]
		}
		diag := math.Sqrt(sum)
		a[c][c] = diag
		for r := c + 1; r < n; r++ {
			s := a[r][c]
			for m := 0; m < c; m++ {
				s -= a[r][m] * a[c][m]
			}
			a[r][c] = s / diag
		}
	}
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			total += a[i][j]
		}
	}
	return total
}

func protoLabel(p string) string {
	if p == "" {
		return "sc"
	}
	return p
}
