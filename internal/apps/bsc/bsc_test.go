package bsc_test

import (
	"math"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/bsc"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

func run(t *testing.T, procs int, cfg bsc.Config, crl bool) apputil.Result {
	t.Helper()
	app := func(rt rtiface.RT) (apputil.Result, error) { return bsc.Run(rt, cfg) }
	var res apputil.Result
	var err error
	if crl {
		res, err = bench.RunCRL(procs, app)
	} else {
		res, err = bench.RunAce(procs, app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func close(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestFactorizationMatchesSequential(t *testing.T) {
	cfg := bsc.Config{Blocks: 6, BlockSize: 8, Bandwidth: 3, Seed: 3}
	want := bsc.SequentialFactor(cfg)
	for _, procs := range []int{1, 2, 4} {
		if got := run(t, procs, cfg, false); !close(got.Checksum, want) {
			t.Errorf("procs=%d: got %v, want %v", procs, got.Checksum, want)
		}
	}
}

func TestHomeWriteProtocol(t *testing.T) {
	cfg := bsc.Config{Blocks: 6, BlockSize: 8, Bandwidth: 3, Seed: 3, Proto: "homewrite"}
	want := bsc.SequentialFactor(bsc.Config{Blocks: 6, BlockSize: 8, Bandwidth: 3, Seed: 3})
	if got := run(t, 3, cfg, false); !close(got.Checksum, want) {
		t.Fatalf("homewrite: got %v, want %v", got.Checksum, want)
	}
}

func TestRunsOnCRL(t *testing.T) {
	cfg := bsc.Config{Blocks: 5, BlockSize: 6, Bandwidth: 2, Seed: 3}
	want := bsc.SequentialFactor(cfg)
	if got := run(t, 3, cfg, true); !close(got.Checksum, want) {
		t.Fatalf("crl: got %v, want %v", got.Checksum, want)
	}
}

func TestBandwidthTruncationExact(t *testing.T) {
	// A banded SPD matrix's factor stays within the band, so the banded
	// parallel algorithm must agree with the dense sequential one for
	// several bandwidths.
	for _, band := range []int{2, 3, 5} {
		cfg := bsc.Config{Blocks: 6, BlockSize: 6, Bandwidth: band, Seed: 3}
		want := bsc.SequentialFactor(cfg)
		if got := run(t, 2, cfg, false); !close(got.Checksum, want) {
			t.Errorf("band=%d: got %v, want %v", band, got.Checksum, want)
		}
	}
}

func TestBadConfig(t *testing.T) {
	_, err := bench.RunAce(2, func(rt rtiface.RT) (apputil.Result, error) {
		return bsc.Run(rt, bsc.Config{Blocks: 1, BlockSize: 4, Bandwidth: 1})
	})
	if err == nil {
		t.Fatal("Blocks=1 should be rejected")
	}
}
