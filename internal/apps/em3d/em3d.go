// Package em3d implements the EM3D benchmark (Culler et al., Split-C):
// propagation of electromagnetic waves through a bipartite graph of E and
// H nodes. In each time step, new E values are a weighted sum of
// neighboring H nodes, then new H values of neighboring E nodes — the
// static producer-consumer pattern that motivates update protocols
// (Sections 3.3 and 5.2 of the paper).
//
// Each node's value is one shared region (fine granularity); the graph
// structure and edge weights are deterministic from the seed and
// replicated, as in the Split-C original where edges are processor-local.
package em3d

import (
	"fmt"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// Config parameterizes the benchmark. The paper's input was 1000 E and
// 1000 H vertices, 20% remote edges, degree 10, 100 steps.
type Config struct {
	Nodes     int // E nodes and H nodes, each
	Degree    int
	PctRemote int // percentage of edges crossing processors
	Steps     int
	Seed      int64

	// Proto, if non-empty, is the protocol for the two value spaces
	// ("update", "staticupdate"). Empty runs on the default space. The
	// program follows Figure 2: spaces start sequentially consistent and
	// switch via ChangeProtocol after graph construction.
	Proto string
}

// DefaultConfig returns a laptop-scale version of the paper's input.
func DefaultConfig() Config {
	return Config{Nodes: 256, Degree: 10, PctRemote: 20, Steps: 10, Seed: 42}
}

// node is one processor's view of a graph node it owns. Accesses map and
// unmap regions around each use, the canonical region-programming style
// (the table-4 "hand-optimized" variants hoist the maps; see package
// table4 in internal/bench).
type node struct {
	own       core.RegionID
	neighbors []core.RegionID // regions of the opposite class
	weights   []float64
}

// Run executes EM3D on rt.
func Run(rt rtiface.RT, cfg Config) (apputil.Result, error) {
	res := apputil.Result{Name: "em3d", Runtime: rt.Name(), Protocols: protoLabel(cfg.Proto)}
	if cfg.Nodes < rt.Procs() || cfg.Degree < 1 || cfg.Steps < 2 {
		return res, fmt.Errorf("em3d: bad config %+v", cfg)
	}

	// Spaces: eval and hval, as in Figure 2. With no custom protocol the
	// default space serves both.
	var eSpace, hSpace rtiface.SpaceID
	srt, _ := rt.(rtiface.SpaceRT)
	hasSpaces := srt != nil &&
		rt.Capabilities().Has(rtiface.CapSpaces|rtiface.CapCustomProtocols|rtiface.CapChangeProtocol)
	useSpaces := cfg.Proto != "" && hasSpaces
	if cfg.Proto != "" && !hasSpaces {
		return res, fmt.Errorf("em3d: runtime %s has no spaces for protocol %q", rt.Name(), cfg.Proto)
	}
	if useSpaces {
		var err error
		if eSpace, err = srt.NewSpace("sc"); err != nil {
			return res, err
		}
		if hSpace, err = srt.NewSpace("sc"); err != nil {
			return res, err
		}
	}

	alloc := func(space rtiface.SpaceID) core.RegionID {
		if useSpaces {
			return srt.MallocIn(space, 8)
		}
		return rt.Malloc(8)
	}

	// Allocate owned node values and learn everyone's ids.
	lo, hi := apputil.Block(cfg.Nodes, rt.Procs(), rt.ID())
	mineE := make([]core.RegionID, 0, hi-lo)
	mineH := make([]core.RegionID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		mineE = append(mineE, alloc(eSpace))
		mineH = append(mineH, alloc(hSpace))
	}
	eIDs := gatherIDs(rt, cfg.Nodes, mineE)
	hIDs := gatherIDs(rt, cfg.Nodes, mineH)

	// Build owned nodes with deterministic neighbor lists and initialize
	// values.
	eNodes := buildNodes(cfg, lo, hi, eIDs, hIDs, 0, rt)
	hNodes := buildNodes(cfg, lo, hi, hIDs, eIDs, 1, rt)
	for i, n := range eNodes {
		h := rt.Map(n.own)
		rt.StartWrite(h)
		h.Data().SetFloat64(0, float64(lo+i)/float64(cfg.Nodes))
		rt.EndWrite(h)
		rt.Unmap(h)
	}
	for i, n := range hNodes {
		h := rt.Map(n.own)
		rt.StartWrite(h)
		h.Data().SetFloat64(0, float64(lo+i+cfg.Nodes)/float64(cfg.Nodes))
		rt.EndWrite(h)
		rt.Unmap(h)
	}
	rt.Barrier()

	// Switch to the custom protocol after construction (Figure 2, lines
	// 8–9).
	if useSpaces && cfg.Proto != "sc" {
		if err := srt.ChangeProtocol(eSpace, cfg.Proto); err != nil {
			return res, err
		}
		if err := srt.ChangeProtocol(hSpace, cfg.Proto); err != nil {
			return res, err
		}
	}

	barrier := func(space rtiface.SpaceID) {
		if useSpaces {
			srt.BarrierSpace(space)
		} else {
			rt.Barrier()
		}
	}

	// Main loop (Figure 2, lines 12–17): new E from H, barrier on the
	// written space, new H from E, barrier.
	var tm apputil.Timer
	for step := 0; step < cfg.Steps; step++ {
		tm.StartIter()
		computePhase(rt, eNodes)
		barrier(eSpace)
		computePhase(rt, hNodes)
		barrier(hSpace)
		tm.EndIter()
	}

	// Checksum across all values.
	sum := 0.0
	for _, n := range append(append([]node{}, eNodes...), hNodes...) {
		h := rt.Map(n.own)
		rt.StartRead(h)
		sum += h.Data().Float64(0)
		rt.EndRead(h)
		rt.Unmap(h)
	}
	res.Checksum = rt.AllReduceFloat64(core.OpSum, sum)

	iters, total := tm.Timed()
	res.Iters = iters
	res.Total = time.Duration(rt.AllReduceInt64(core.OpMax, int64(total)))
	if iters > 0 {
		res.TimePerIter = res.Total / time.Duration(iters)
	}
	rt.Barrier()
	return res, nil
}

// computePhase recomputes every owned node as the weighted sum of its
// neighbors' values.
func computePhase(rt rtiface.RT, nodes []node) {
	for _, n := range nodes {
		acc := 0.0
		for j, nb := range n.neighbors {
			h := rt.Map(nb)
			rt.StartRead(h)
			acc += n.weights[j] * h.Data().Float64(0)
			rt.EndRead(h)
			rt.Unmap(h)
		}
		h := rt.Map(n.own)
		rt.StartWrite(h)
		h.Data().SetFloat64(0, acc)
		rt.EndWrite(h)
		rt.Unmap(h)
	}
}

// buildNodes constructs the owned nodes in [lo,hi) of the class whose ids
// are ownIDs, choosing neighbors from otherIDs deterministically: with
// probability PctRemote the neighbor is owned by a different processor.
func buildNodes(cfg Config, lo, hi int, ownIDs, otherIDs []core.RegionID, class int64, rt rtiface.RT) []node {
	nodes := make([]node, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(cfg.Seed, class*int64(cfg.Nodes)+int64(i))
		n := node{own: ownIDs[i]}
		for d := 0; d < cfg.Degree; d++ {
			var target int
			if rng.Intn(100) < cfg.PctRemote && rt.Procs() > 1 {
				// A node owned by someone else.
				for {
					target = rng.Intn(cfg.Nodes)
					if apputil.Owner(cfg.Nodes, rt.Procs(), target) != rt.ID() {
						break
					}
				}
			} else {
				myLo, myHi := apputil.Block(cfg.Nodes, rt.Procs(), rt.ID())
				target = myLo + rng.Intn(myHi-myLo)
			}
			n.neighbors = append(n.neighbors, otherIDs[target])
			// Normalized so values stay bounded over arbitrarily many steps.
			n.weights = append(n.weights, rng.Float64()/float64(cfg.Degree))
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// gatherIDs assembles the global id array for one node class: each
// processor broadcasts the ids it allocated.
func gatherIDs(rt rtiface.RT, n int, mine []core.RegionID) []core.RegionID {
	all := make([]core.RegionID, 0, n)
	for p := 0; p < rt.Procs(); p++ {
		if p == rt.ID() {
			all = append(all, rt.BroadcastIDs(p, mine)...)
		} else {
			lo, hi := apputil.Block(n, rt.Procs(), p)
			all = append(all, rt.BroadcastIDs(p, make([]core.RegionID, hi-lo))...)
		}
	}
	return all
}

func protoLabel(p string) string {
	if p == "" {
		return "sc"
	}
	return p
}
