package em3d_test

import (
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

func run(t *testing.T, procs int, cfg em3d.Config, crl bool) apputil.Result {
	t.Helper()
	app := func(rt rtiface.RT) (apputil.Result, error) { return em3d.Run(rt, cfg) }
	var res apputil.Result
	var err error
	if crl {
		res, err = bench.RunCRL(procs, app)
	} else {
		res, err = bench.RunAce(procs, app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallCfg() em3d.Config {
	return em3d.Config{Nodes: 48, Degree: 5, PctRemote: 20, Steps: 4, Seed: 42}
}

// TestProtocolsComputeIdenticalResults is the central end-to-end check:
// the same program under sc, dynamic update and static update produces
// bit-identical values (the protocols differ in data movement only).
func TestProtocolsComputeIdenticalResults(t *testing.T) {
	base := run(t, 4, smallCfg(), false)
	for _, protoName := range []string{"update", "staticupdate"} {
		cfg := smallCfg()
		cfg.Proto = protoName
		got := run(t, 4, cfg, false)
		if got.Checksum != base.Checksum {
			t.Errorf("%s: checksum %v != sc %v", protoName, got.Checksum, base.Checksum)
		}
	}
}

// TestDeterministicForFixedProcs: for a fixed partitioning the result is
// bit-identical across runs. (The graph itself is partition-dependent by
// construction — "20% remote edges" is defined relative to the
// partition, as in the Split-C generator — so results are only comparable
// at equal processor counts.)
func TestDeterministicForFixedProcs(t *testing.T) {
	a := run(t, 4, smallCfg(), false)
	b := run(t, 4, smallCfg(), false)
	if a.Checksum != b.Checksum {
		t.Errorf("two identical runs differ: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestRunsOnCRLWithSameResult(t *testing.T) {
	ace := run(t, 4, smallCfg(), false)
	crl := run(t, 4, smallCfg(), true)
	if ace.Checksum != crl.Checksum {
		t.Fatalf("ace %v != crl %v", ace.Checksum, crl.Checksum)
	}
	if crl.Runtime != "crl" || ace.Runtime != "ace" {
		t.Errorf("runtime labels: %q, %q", ace.Runtime, crl.Runtime)
	}
}

// TestStaticUpdateReducesTraffic: the protocol's purpose is fewer
// messages in steady state.
func TestStaticUpdateReducesTraffic(t *testing.T) {
	cfg := smallCfg()
	cfg.Steps = 8
	sc := run(t, 4, cfg, false)
	cfg.Proto = "staticupdate"
	su := run(t, 4, cfg, false)
	if su.Msgs >= sc.Msgs {
		t.Fatalf("staticupdate msgs %d >= sc msgs %d", su.Msgs, sc.Msgs)
	}
}

func TestBadConfigs(t *testing.T) {
	bad := []em3d.Config{
		{Nodes: 2, Degree: 5, Steps: 4},  // fewer nodes than procs
		{Nodes: 64, Degree: 0, Steps: 4}, // no edges
		{Nodes: 64, Degree: 5, Steps: 1}, // too few steps to time
	}
	for i, cfg := range bad {
		_, err := bench.RunAce(4, func(rt rtiface.RT) (apputil.Result, error) { return em3d.Run(rt, cfg) })
		if err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}
