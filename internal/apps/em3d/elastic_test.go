package em3d_test

import (
	"sync"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// runElastic executes RunElastic on a fresh cluster, collecting each
// processor's latest saved checkpoint, and returns proc 0's result.
func runElastic(t *testing.T, procs int, cfg em3d.Config, el em3d.ElasticConfig,
	saved map[int]*core.Checkpoint) apputil.Result {
	t.Helper()
	cl, err := core.NewCluster(core.Options{Procs: procs, Registry: proto.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var mu sync.Mutex
	var res apputil.Result
	err = cl.Run(func(p *core.Proc) error {
		pel := el
		if saved != nil {
			pel.Save = func(ck *core.Checkpoint) error {
				mu.Lock()
				saved[p.ID()] = ck
				mu.Unlock()
				return nil
			}
		}
		if el.Resume != nil {
			// Per-proc resume images come through the saved map.
			mu.Lock()
			pel.Resume = saved[p.ID()]
			mu.Unlock()
		}
		r, err := em3d.RunElastic(p, cfg, pel)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestElasticMatchesPlainRun: RunElastic with checkpoints enabled (but
// never used) computes the same checksum as the plain runner — the
// checkpoint collectives are invisible to the computation.
func TestElasticMatchesPlainRun(t *testing.T) {
	for _, protoName := range []string{"", "staticupdate", "update"} {
		cfg := smallCfg()
		cfg.Proto = protoName
		base := run(t, 4, cfg, false)
		got := runElastic(t, 4, cfg, em3d.ElasticConfig{Every: 2}, nil)
		if got.Checksum != base.Checksum {
			t.Errorf("proto %q: elastic checksum %v != plain %v", protoName, got.Checksum, base.Checksum)
		}
	}
}

// TestResumeFromCheckpointBitIdentical is the recovery model's core
// claim in miniature: run to completion saving checkpoints, then start
// a brand-new cluster, restore each processor's last checkpoint, replay
// the remaining steps, and land on a bit-identical checksum — after a
// round trip through the serialized checkpoint format.
func TestResumeFromCheckpointBitIdentical(t *testing.T) {
	for _, protoName := range []string{"", "staticupdate", "update"} {
		cfg := smallCfg()
		cfg.Steps = 6
		cfg.Proto = protoName
		saved := make(map[int]*core.Checkpoint)
		base := runElastic(t, 4, cfg, em3d.ElasticConfig{Every: 2}, saved)
		if len(saved) != 4 {
			t.Fatalf("proto %q: saved checkpoints for %d procs, want 4", protoName, len(saved))
		}
		for id, ck := range saved {
			if ck.App != 4 {
				t.Fatalf("proto %q: proc %d last checkpoint at step %d, want 4", protoName, id, ck.App)
			}
			rt, err := core.DecodeCheckpoint(core.EncodeCheckpoint(ck))
			if err != nil {
				t.Fatalf("proto %q: checkpoint round trip: %v", protoName, err)
			}
			saved[id] = rt
		}
		got := runElastic(t, 4, cfg, em3d.ElasticConfig{Resume: &core.Checkpoint{}}, saved)
		if got.Checksum != base.Checksum {
			t.Errorf("proto %q: resumed checksum %v != full run %v", protoName, got.Checksum, base.Checksum)
		}
	}
}
