package em3d

import (
	"fmt"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// ElasticConfig adds checkpoint/restore to an EM3D run (DESIGN.md §13).
// The graph construction is deterministic from Config, so a restarted
// cluster of the same shape reallocates the same region ids; a
// checkpoint therefore only needs the region contents plus the step it
// was taken at, and re-execution from there is bit-identical.
type ElasticConfig struct {
	// Every takes a collective checkpoint before computing step K for
	// every K that is a positive multiple of Every (0 disables).
	Every int
	// Save persists this processor's checkpoint; called on every
	// processor, outside any collective (failures propagate as run
	// errors). Nil discards.
	Save func(ck *core.Checkpoint) error
	// Resume, if non-nil, restores this checkpoint after construction
	// and starts the time-step loop at Resume.App instead of 0.
	Resume *core.Checkpoint
	// Delay, if positive, sleeps this long after every step — a drill
	// knob that stretches the run so a chaos harness can kill a process
	// mid-computation at a predictable step.
	Delay time.Duration
}

// RunElastic executes EM3D on a core cluster with periodic collective
// checkpoints, optionally resuming from one. The computation — and its
// checksum — matches Run on the same Config bit for bit: construction
// is replayed, state is reset to the checkpoint image, and the
// remaining steps re-execute deterministically.
func RunElastic(p *core.Proc, cfg Config, el ElasticConfig) (apputil.Result, error) {
	rt := rtiface.NewAce(p)
	res := apputil.Result{Name: "em3d", Runtime: rt.Name(), Protocols: protoLabel(cfg.Proto)}
	if cfg.Nodes < p.Procs() || cfg.Degree < 1 || cfg.Steps < 2 {
		return res, fmt.Errorf("em3d: bad config %+v", cfg)
	}
	start := 0
	if el.Resume != nil {
		start = int(el.Resume.App)
		if start < 0 || start >= cfg.Steps {
			return res, fmt.Errorf("em3d: checkpoint step %d outside [0,%d)", start, cfg.Steps)
		}
	}

	// Construction, exactly as Run: two spaces born sequentially
	// consistent, switched after the graph is built.
	eSpace, err := p.NewSpace("sc")
	if err != nil {
		return res, err
	}
	hSpace, err := p.NewSpace("sc")
	if err != nil {
		return res, err
	}
	lo, hi := apputil.Block(cfg.Nodes, p.Procs(), p.ID())
	mineE := make([]core.RegionID, 0, hi-lo)
	mineH := make([]core.RegionID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		mineE = append(mineE, p.GMalloc(eSpace, 8))
		mineH = append(mineH, p.GMalloc(hSpace, 8))
	}
	eIDs := gatherIDs(rt, cfg.Nodes, mineE)
	hIDs := gatherIDs(rt, cfg.Nodes, mineH)
	eNodes := buildNodes(cfg, lo, hi, eIDs, hIDs, 0, rt)
	hNodes := buildNodes(cfg, lo, hi, hIDs, eIDs, 1, rt)
	for i, n := range eNodes {
		r := p.Map(n.own)
		p.StartWrite(r)
		r.Data.SetFloat64(0, float64(lo+i)/float64(cfg.Nodes))
		p.EndWrite(r)
		p.Unmap(r)
	}
	for i, n := range hNodes {
		r := p.Map(n.own)
		p.StartWrite(r)
		r.Data.SetFloat64(0, float64(lo+i+cfg.Nodes)/float64(cfg.Nodes))
		p.EndWrite(r)
		p.Unmap(r)
	}
	p.GlobalBarrier()
	if cfg.Proto != "" && cfg.Proto != "sc" {
		if err := p.ChangeProtocol(eSpace, cfg.Proto); err != nil {
			return res, err
		}
		if err := p.ChangeProtocol(hSpace, cfg.Proto); err != nil {
			return res, err
		}
	}

	// Restore after the protocol switch so the checkpoint lands on the
	// same protocol it was taken under (RestoreCheckpoint resets the
	// installed protocol's state either way).
	if el.Resume != nil {
		if err := p.RestoreCheckpoint(el.Resume); err != nil {
			return res, err
		}
		// Restore is local; fence it collectively so no processor's
		// first remote fetch can race a peer still installing its image.
		p.GlobalBarrier()
	}

	var tm apputil.Timer
	for step := start; step < cfg.Steps; step++ {
		if el.Every > 0 && step > start && step%el.Every == 0 {
			ck, err := p.Checkpoint(uint64(step))
			if err != nil {
				return res, err
			}
			if el.Save != nil {
				if err := el.Save(ck); err != nil {
					return res, fmt.Errorf("em3d: checkpoint save: %w", err)
				}
			}
		}
		tm.StartIter()
		computePhase(rt, eNodes)
		p.Barrier(eSpace)
		computePhase(rt, hNodes)
		p.Barrier(hSpace)
		tm.EndIter()
		if el.Delay > 0 {
			time.Sleep(el.Delay)
		}
	}

	sum := 0.0
	for _, n := range append(append([]node{}, eNodes...), hNodes...) {
		r := p.Map(n.own)
		p.StartRead(r)
		sum += r.Data.Float64(0)
		p.EndRead(r)
		p.Unmap(r)
	}
	res.Checksum = p.AllReduceFloat64(core.OpSum, sum)

	iters, total := tm.Timed()
	res.Iters = iters
	res.Total = time.Duration(p.AllReduceInt64(core.OpMax, int64(total)))
	if iters > 0 {
		res.TimePerIter = res.Total / time.Duration(iters)
	}
	p.GlobalBarrier()
	return res, nil
}
