// Package tsp implements the branch-and-bound Traveling Salesman benchmark
// from the CRL 1.0 distribution. Work is distributed through a shared job
// counter: each job is a fixed two-city prefix whose subtree a processor
// explores with depth-first search, pruned against the shared best bound.
//
// The application-specific optimization (Section 5.2) is "better
// management of accesses to a counter that is used to assign jobs": the
// counter moves into a space governed by the "atomic" protocol, turning
// each job grab into a single home round trip instead of an exclusive
// ownership migration.
package tsp

import (
	"fmt"
	"math"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// Config parameterizes the benchmark. The paper used 12 cities.
type Config struct {
	Cities int
	Seed   int64

	// CounterProto, if non-empty, places the job counter in a space with
	// the named protocol ("atomic"). Empty keeps everything on the
	// default space.
	CounterProto string
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Cities: 10, Seed: 7}
}

// Run executes TSP on rt and returns the optimal tour length as the
// checksum.
func Run(rt rtiface.RT, cfg Config) (apputil.Result, error) {
	res := apputil.Result{Name: "tsp", Runtime: rt.Name(), Protocols: "sc"}
	if cfg.Cities < 4 || cfg.Cities > 16 {
		return res, fmt.Errorf("tsp: bad city count %d", cfg.Cities)
	}
	n := cfg.Cities
	dist := distances(cfg)

	// Shared state: the job counter and the best bound.
	srt, _ := rt.(rtiface.SpaceRT)
	hasSpaces := srt != nil &&
		rt.Capabilities().Has(rtiface.CapSpaces|rtiface.CapCustomProtocols)
	useCounterSpace := cfg.CounterProto != "" && hasSpaces
	if cfg.CounterProto != "" && !hasSpaces {
		return res, fmt.Errorf("tsp: runtime %s has no spaces for protocol %q", rt.Name(), cfg.CounterProto)
	}
	var counterSpace rtiface.SpaceID
	if useCounterSpace {
		var err error
		if counterSpace, err = srt.NewSpace(cfg.CounterProto); err != nil {
			return res, err
		}
		res.Protocols = "counter=" + cfg.CounterProto
	}

	var counterID, bestID core.RegionID
	if rt.ID() == 0 {
		if useCounterSpace {
			counterID = srt.MallocIn(counterSpace, 8)
		} else {
			counterID = rt.Malloc(8)
		}
		bestID = rt.Malloc(8)
		b := rt.Map(bestID)
		rt.StartWrite(b)
		b.Data().SetInt64(0, math.MaxInt64/4)
		rt.EndWrite(b)
		rt.Unmap(b)
	}
	counterID = rt.BroadcastID(0, counterID)
	bestID = rt.BroadcastID(0, bestID)
	rt.Barrier()

	// Jobs: fixed prefixes (0, a, b) with distinct a, b ∈ 1..n-1.
	numJobs := (n - 1) * (n - 2)
	start := time.Now()
	s := solver{rt: rt, n: n, dist: dist, bestID: bestID}
	for {
		// Grab the next job: an atomic fetch-and-increment through an
		// exclusive write section (or the atomic protocol's home-side
		// RMW when configured). Regions are mapped around each use.
		counter := rt.Map(counterID)
		rt.StartWrite(counter)
		job := counter.Data().Int64(0)
		counter.Data().SetInt64(0, job+1)
		rt.EndWrite(counter)
		rt.Unmap(counter)
		if job >= int64(numJobs) {
			break
		}
		a := int(job)/(n-2) + 1
		b := int(job) % (n - 2)
		second := a
		third := 1 + b
		if third >= second {
			third++
		}
		s.runJob(second, third)
	}
	rt.Barrier()

	best := rt.Map(bestID)
	rt.StartRead(best)
	final := best.Data().Int64(0)
	rt.EndRead(best)
	rt.Unmap(best)
	res.Checksum = float64(final)
	res.Iters = 1
	res.Total = time.Duration(rt.AllReduceInt64(core.OpMax, int64(time.Since(start))))
	res.TimePerIter = res.Total
	rt.Barrier()
	return res, nil
}

// solver carries the per-processor search state.
type solver struct {
	rt        rtiface.RT
	n         int
	dist      [][]int64
	bestID    core.RegionID
	localBest int64
	visited   uint32
	path      []int
}

// runJob explores the subtree rooted at the prefix 0 → second → third.
func (s *solver) runJob(second, third int) {
	// Refresh the bound at job start.
	best := s.rt.Map(s.bestID)
	s.rt.StartRead(best)
	s.localBest = best.Data().Int64(0)
	s.rt.EndRead(best)
	s.rt.Unmap(best)

	s.visited = 1<<0 | 1<<second | 1<<third
	s.path = s.path[:0]
	s.path = append(s.path, 0, second, third)
	s.dfs(third, s.dist[0][second]+s.dist[second][third])
}

// dfs extends the current partial tour from city `at` with accumulated
// length `len`.
func (s *solver) dfs(at int, length int64) {
	if length >= s.localBest {
		return
	}
	if len(s.path) == s.n {
		total := length + s.dist[at][0]
		if total < s.localBest {
			s.localBest = total
			s.publish(total)
		}
		return
	}
	for next := 1; next < s.n; next++ {
		if s.visited&(1<<next) != 0 {
			continue
		}
		s.visited |= 1 << next
		s.path = append(s.path, next)
		s.dfs(next, length+s.dist[at][next])
		s.path = s.path[:len(s.path)-1]
		s.visited &^= 1 << next
	}
}

// publish installs an improved bound in the shared best region (an atomic
// min through an exclusive write section).
func (s *solver) publish(total int64) {
	best := s.rt.Map(s.bestID)
	s.rt.StartWrite(best)
	if cur := best.Data().Int64(0); total < cur {
		best.Data().SetInt64(0, total)
	} else {
		s.localBest = cur
	}
	s.rt.EndWrite(best)
	s.rt.Unmap(best)
}

// distances builds the deterministic symmetric distance matrix.
func distances(cfg Config) [][]int64 {
	rng := apputil.RNG(cfg.Seed, 0)
	n := cfg.Cities
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64(rng.Intn(99) + 1)
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// SequentialBest solves the instance on one processor, for verification.
func SequentialBest(cfg Config) int64 {
	dist := distances(cfg)
	n := cfg.Cities
	best := int64(math.MaxInt64 / 4)
	var dfs func(at int, visited uint32, count int, length int64)
	dfs = func(at int, visited uint32, count int, length int64) {
		if length >= best {
			return
		}
		if count == n {
			if t := length + dist[at][0]; t < best {
				best = t
			}
			return
		}
		for next := 1; next < n; next++ {
			if visited&(1<<next) != 0 {
				continue
			}
			dfs(next, visited|1<<next, count+1, length+dist[at][next])
		}
	}
	dfs(0, 1, 1, 0)
	return best
}
