package tsp_test

import (
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/tsp"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

func run(t *testing.T, procs int, cfg tsp.Config, crl bool) apputil.Result {
	t.Helper()
	app := func(rt rtiface.RT) (apputil.Result, error) { return tsp.Run(rt, cfg) }
	var res apputil.Result
	var err error
	if crl {
		res, err = bench.RunCRL(procs, app)
	} else {
		res, err = bench.RunAce(procs, app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, cities := range []int{6, 8, 9} {
		cfg := tsp.Config{Cities: cities, Seed: 7}
		want := tsp.SequentialBest(cfg)
		for _, procs := range []int{1, 3, 5} {
			if got := run(t, procs, cfg, false); int64(got.Checksum) != want {
				t.Errorf("cities=%d procs=%d: got %v, want %d", cities, procs, got.Checksum, want)
			}
		}
	}
}

func TestAtomicCounterConfig(t *testing.T) {
	cfg := tsp.Config{Cities: 8, Seed: 7, CounterProto: "atomic"}
	want := tsp.SequentialBest(tsp.Config{Cities: 8, Seed: 7})
	got := run(t, 4, cfg, false)
	if int64(got.Checksum) != want {
		t.Fatalf("atomic counter run: got %v, want %d", got.Checksum, want)
	}
	if got.Protocols != "counter=atomic" {
		t.Errorf("protocol label = %q", got.Protocols)
	}
}

func TestRunsOnCRL(t *testing.T) {
	cfg := tsp.Config{Cities: 8, Seed: 7}
	want := tsp.SequentialBest(cfg)
	if got := run(t, 4, cfg, true); int64(got.Checksum) != want {
		t.Fatalf("crl run: got %v, want %d", got.Checksum, want)
	}
}

func TestCRLRejectsCustomProtocol(t *testing.T) {
	cfg := tsp.Config{Cities: 8, Seed: 7, CounterProto: "atomic"}
	_, err := bench.RunCRL(2, func(rt rtiface.RT) (apputil.Result, error) { return tsp.Run(rt, cfg) })
	if err == nil {
		t.Fatal("CRL should reject a custom-protocol configuration")
	}
}

func TestBadConfig(t *testing.T) {
	for _, cities := range []int{0, 3, 17} {
		_, err := bench.RunAce(2, func(rt rtiface.RT) (apputil.Result, error) {
			return tsp.Run(rt, tsp.Config{Cities: cities})
		})
		if err == nil {
			t.Errorf("cities=%d should be rejected", cities)
		}
	}
}
