// Package barneshut implements the Barnes-Hut O(N log N) hierarchical
// N-body benchmark (Barnes & Hut, Nature 1986; SPLASH suite).
//
// Bodies are shared regions (position, velocity, mass); each time step
// every processor reads all body states, builds the octree locally, and
// computes forces for the bodies it owns — so the tree is replicated and
// deterministic while body state is the shared, fine-grained data
// structure. This preserves the sharing pattern the protocols react to:
// per-step all-to-all reads of data each owner rewrites every step. (The
// CRL original shares the tree cells too; body traffic dominates and is
// what the paper's dynamic update protocol targets.)
//
// The application-specific protocol (Section 5.2) is the dynamic update
// protocol for bodies: each owner's end-of-step writes are pushed to all
// sharers, replacing per-step read-miss round trips with asynchronous
// updates.
package barneshut

import (
	"fmt"
	"math"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// Config parameterizes the benchmark. The paper used 16384 bodies, 4 time
// steps, tolerance (theta) 1.0, eps 0.5.
type Config struct {
	Bodies int
	Steps  int
	Theta  float64
	Eps    float64
	DT     float64
	Seed   int64

	// Proto, if non-empty, is the protocol for the body space
	// ("update"). Empty runs on the default space.
	Proto string
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// physics constants.
func DefaultConfig() Config {
	return Config{Bodies: 256, Steps: 5, Theta: 1.0, Eps: 0.5, DT: 0.025, Seed: 17}
}

// Body region layout, in float64 slots.
const (
	slotPX = iota
	slotPY
	slotPZ
	slotVX
	slotVY
	slotVZ
	slotMass
	bodySlots
)

// body is a local snapshot of a body's state.
type body struct {
	pos  [3]float64
	vel  [3]float64
	mass float64
}

// Run executes Barnes-Hut on rt.
func Run(rt rtiface.RT, cfg Config) (apputil.Result, error) {
	res := apputil.Result{Name: "barneshut", Runtime: rt.Name(), Protocols: protoLabel(cfg.Proto)}
	if cfg.Bodies < rt.Procs() || cfg.Steps < 2 {
		return res, fmt.Errorf("barneshut: bad config %+v", cfg)
	}

	srt, _ := rt.(rtiface.SpaceRT)
	hasSpaces := srt != nil &&
		rt.Capabilities().Has(rtiface.CapSpaces|rtiface.CapCustomProtocols|rtiface.CapChangeProtocol)
	useSpace := cfg.Proto != "" && hasSpaces
	if cfg.Proto != "" && !hasSpaces {
		return res, fmt.Errorf("barneshut: runtime %s has no spaces for protocol %q", rt.Name(), cfg.Proto)
	}
	var space rtiface.SpaceID
	if useSpace {
		var err error
		if space, err = srt.NewSpace("sc"); err != nil {
			return res, err
		}
	}

	// Allocate owned bodies, learn all ids, map everything.
	lo, hi := apputil.Block(cfg.Bodies, rt.Procs(), rt.ID())
	mine := make([]core.RegionID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if useSpace {
			mine = append(mine, srt.MallocIn(space, bodySlots*8))
		} else {
			mine = append(mine, rt.Malloc(bodySlots*8))
		}
	}
	ids := gatherIDs(rt, cfg.Bodies, mine)

	// Deterministic initial conditions: a Plummer-ish ball. Regions are
	// mapped around each use, the canonical region-programming style.
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(cfg.Seed, int64(i))
		h := rt.Map(ids[i])
		rt.StartWrite(h)
		for d := 0; d < 3; d++ {
			h.Data().SetFloat64(slotPX+d, rng.Float64()*2-1)
			h.Data().SetFloat64(slotVX+d, (rng.Float64()*2-1)*0.1)
		}
		h.Data().SetFloat64(slotMass, 0.5+rng.Float64())
		rt.EndWrite(h)
		rt.Unmap(h)
	}
	rt.Barrier()

	if useSpace && cfg.Proto != "sc" {
		if err := srt.ChangeProtocol(space, cfg.Proto); err != nil {
			return res, err
		}
	}
	barrier := func() {
		if useSpace {
			srt.BarrierSpace(space)
		} else {
			rt.Barrier()
		}
	}

	snapshot := make([]body, cfg.Bodies)
	var tm apputil.Timer
	for step := 0; step < cfg.Steps; step++ {
		tm.StartIter()
		// Read all body states (this is the shared traffic).
		for i, id := range ids {
			h := rt.Map(id)
			rt.StartRead(h)
			d := h.Data()
			snapshot[i] = body{
				pos:  [3]float64{d.Float64(slotPX), d.Float64(slotPY), d.Float64(slotPZ)},
				vel:  [3]float64{d.Float64(slotVX), d.Float64(slotVY), d.Float64(slotVZ)},
				mass: d.Float64(slotMass),
			}
			rt.EndRead(h)
			rt.Unmap(h)
		}
		// All reads complete before anyone writes: without this barrier
		// a fast processor's end-of-step writes could be observed by a
		// slow processor still snapshotting (a data race under any
		// protocol).
		barrier()
		// Build the octree locally (deterministic: same snapshot
		// everywhere) and compute forces for owned bodies.
		tree := buildTree(snapshot)
		for i := lo; i < hi; i++ {
			acc := tree.force(snapshot[i].pos, cfg.Theta, cfg.Eps, i, snapshot)
			b := &snapshot[i]
			for d := 0; d < 3; d++ {
				b.vel[d] += acc[d] * cfg.DT
				b.pos[d] += b.vel[d] * cfg.DT
			}
			h := rt.Map(ids[i])
			rt.StartWrite(h)
			dd := h.Data()
			dd.SetFloat64(slotPX, b.pos[0])
			dd.SetFloat64(slotPY, b.pos[1])
			dd.SetFloat64(slotPZ, b.pos[2])
			dd.SetFloat64(slotVX, b.vel[0])
			dd.SetFloat64(slotVY, b.vel[1])
			dd.SetFloat64(slotVZ, b.vel[2])
			rt.EndWrite(h)
			rt.Unmap(h)
		}
		barrier()
		tm.EndIter()
	}

	// Checksum: positions of owned bodies.
	sum := 0.0
	for i := lo; i < hi; i++ {
		h := rt.Map(ids[i])
		rt.StartRead(h)
		sum += h.Data().Float64(slotPX) + h.Data().Float64(slotPY) + h.Data().Float64(slotPZ)
		rt.EndRead(h)
		rt.Unmap(h)
	}
	res.Checksum = rt.AllReduceFloat64(core.OpSum, sum)

	iters, total := tm.Timed()
	res.Iters = iters
	res.Total = time.Duration(rt.AllReduceInt64(core.OpMax, int64(total)))
	if iters > 0 {
		res.TimePerIter = res.Total / time.Duration(iters)
	}
	rt.Barrier()
	return res, nil
}

// cell is an octree node: either a leaf holding one body index or an
// internal node with up to eight children, carrying total mass and center
// of mass.
type cell struct {
	center [3]float64 // geometric center of this cell's cube
	half   float64    // half the cube's side
	body   int        // leaf body index, or -1
	kids   [8]*cell
	mass   float64
	com    [3]float64
	leaf   bool
}

// buildTree constructs the octree over all bodies.
func buildTree(bodies []body) *cell {
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for _, b := range bodies {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], b.pos[d])
			hi[d] = math.Max(hi[d], b.pos[d])
		}
	}
	half := 0.0
	var center [3]float64
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		half = math.Max(half, (hi[d]-lo[d])/2)
	}
	half = half*1.0001 + 1e-9
	root := &cell{center: center, half: half, body: -1}
	for i := range bodies {
		root.insert(i, bodies)
	}
	root.summarize(bodies)
	return root
}

// insert adds body i to the subtree rooted at c.
func (c *cell) insert(i int, bodies []body) {
	if !c.leaf && !c.hasChildren() {
		// Never-occupied node: become a leaf.
		c.leaf = true
		c.body = i
		return
	}
	if c.leaf {
		old := c.body
		if samePos(bodies[old].pos, bodies[i].pos) || c.half < 1e-12 {
			// Coincident bodies would split forever. Randomized initial
			// conditions never coincide; treat an exact collision as a
			// single point mass.
			return
		}
		// Split: push the resident body down, then fall through to
		// insert i.
		c.leaf = false
		c.body = -1
		c.childFor(bodies[old].pos).insert(old, bodies)
	}
	c.childFor(bodies[i].pos).insert(i, bodies)
}

func (c *cell) hasChildren() bool {
	for _, k := range c.kids {
		if k != nil {
			return true
		}
	}
	return false
}

// childFor returns (creating on demand) the child cube containing pos.
func (c *cell) childFor(pos [3]float64) *cell {
	idx := 0
	var off [3]float64
	for d := 0; d < 3; d++ {
		if pos[d] >= c.center[d] {
			idx |= 1 << d
			off[d] = c.half / 2
		} else {
			off[d] = -c.half / 2
		}
	}
	if c.kids[idx] == nil {
		c.kids[idx] = &cell{
			center: [3]float64{c.center[0] + off[0], c.center[1] + off[1], c.center[2] + off[2]},
			half:   c.half / 2,
			body:   -1,
		}
	}
	return c.kids[idx]
}

// summarize computes mass and center of mass bottom-up.
func (c *cell) summarize(bodies []body) {
	if c.leaf {
		b := bodies[c.body]
		c.mass = b.mass
		c.com = b.pos
		return
	}
	var m float64
	var com [3]float64
	for _, k := range c.kids {
		if k == nil {
			continue
		}
		k.summarize(bodies)
		m += k.mass
		for d := 0; d < 3; d++ {
			com[d] += k.com[d] * k.mass
		}
	}
	c.mass = m
	if m > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= m
		}
	}
	c.com = com
}

// force computes the acceleration on a body at pos using the Barnes-Hut
// opening criterion.
func (c *cell) force(pos [3]float64, theta, eps float64, self int, bodies []body) [3]float64 {
	var acc [3]float64
	c.accumulate(pos, theta, eps, self, bodies, &acc)
	return acc
}

func (c *cell) accumulate(pos [3]float64, theta, eps float64, self int, bodies []body, acc *[3]float64) {
	if c.mass == 0 {
		return
	}
	if c.leaf {
		if c.body == self {
			return
		}
		addForce(pos, c.com, c.mass, eps, acc)
		return
	}
	dx := c.com[0] - pos[0]
	dy := c.com[1] - pos[1]
	dz := c.com[2] - pos[2]
	dist2 := dx*dx + dy*dy + dz*dz
	size := 2 * c.half
	if size*size < theta*theta*dist2 {
		addForce(pos, c.com, c.mass, eps, acc)
		return
	}
	for _, k := range c.kids {
		if k != nil {
			k.accumulate(pos, theta, eps, self, bodies, acc)
		}
	}
}

func addForce(pos, src [3]float64, mass, eps float64, acc *[3]float64) {
	dx := src[0] - pos[0]
	dy := src[1] - pos[1]
	dz := src[2] - pos[2]
	r2 := dx*dx + dy*dy + dz*dz + eps*eps
	inv := mass / (r2 * math.Sqrt(r2))
	acc[0] += dx * inv
	acc[1] += dy * inv
	acc[2] += dz * inv
}

func samePos(a, b [3]float64) bool { return a == b }

// gatherIDs assembles the global body id array.
func gatherIDs(rt rtiface.RT, n int, mine []core.RegionID) []core.RegionID {
	all := make([]core.RegionID, 0, n)
	for p := 0; p < rt.Procs(); p++ {
		if p == rt.ID() {
			all = append(all, rt.BroadcastIDs(p, mine)...)
		} else {
			lo, hi := apputil.Block(n, rt.Procs(), p)
			all = append(all, rt.BroadcastIDs(p, make([]core.RegionID, hi-lo))...)
		}
	}
	return all
}

func protoLabel(p string) string {
	if p == "" {
		return "sc"
	}
	return p
}
