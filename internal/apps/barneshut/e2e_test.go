package barneshut_test

import (
	"math"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/barneshut"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

// ---- End-to-end tests ----

func smallCfg() barneshut.Config {
	return barneshut.Config{Bodies: 32, Steps: 3, Theta: 1.0, Eps: 0.5, DT: 0.025, Seed: 17}
}

func runApp(t *testing.T, procs int, cfg barneshut.Config, crl bool) apputil.Result {
	t.Helper()
	app := func(rt rtiface.RT) (apputil.Result, error) { return barneshut.Run(rt, cfg) }
	var res apputil.Result
	var err error
	if crl {
		res, err = bench.RunCRL(procs, app)
	} else {
		res, err = bench.RunAce(procs, app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUpdateProtocolMatchesSC(t *testing.T) {
	sc := runApp(t, 4, smallCfg(), false)
	cfg := smallCfg()
	cfg.Proto = "update"
	upd := runApp(t, 4, cfg, false)
	if sc.Checksum != upd.Checksum {
		t.Fatalf("update checksum %v != sc %v", upd.Checksum, sc.Checksum)
	}
}

func TestResultIndependentOfProcs(t *testing.T) {
	// Body states are bit-identical across partitionings; the checksum
	// reduction groups per-processor partial sums differently, so compare
	// with a tight relative tolerance.
	base := runApp(t, 1, smallCfg(), false)
	for _, procs := range []int{2, 4} {
		got := runApp(t, procs, smallCfg(), false)
		diff := math.Abs(got.Checksum - base.Checksum)
		if diff > 1e-12*math.Max(1, math.Abs(base.Checksum)) {
			t.Errorf("procs=%d: %v != %v", procs, got.Checksum, base.Checksum)
		}
	}
}

func TestRunsOnCRL(t *testing.T) {
	ace := runApp(t, 3, smallCfg(), false)
	crl := runApp(t, 3, smallCfg(), true)
	if ace.Checksum != crl.Checksum {
		t.Fatalf("ace %v != crl %v", ace.Checksum, crl.Checksum)
	}
}

func TestBadConfig(t *testing.T) {
	_, err := bench.RunAce(8, func(rt rtiface.RT) (apputil.Result, error) {
		return barneshut.Run(rt, barneshut.Config{Bodies: 4, Steps: 3})
	})
	if err == nil {
		t.Fatal("fewer bodies than procs should be rejected")
	}
}
