package barneshut

import (
	"math"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
)

// ---- Octree unit tests (internal package: the tree is unexported) ----

func mkBodies(n int) []body {
	bodies := make([]body, n)
	for i := range bodies {
		rng := apputil.RNG(99, int64(i))
		for d := 0; d < 3; d++ {
			bodies[i].pos[d] = rng.Float64()*2 - 1
		}
		bodies[i].mass = 0.5 + rng.Float64()
	}
	return bodies
}

func TestTreeMassConservation(t *testing.T) {
	bodies := mkBodies(200)
	tree := buildTree(bodies)
	var want float64
	for _, b := range bodies {
		want += b.mass
	}
	if math.Abs(tree.mass-want) > 1e-9 {
		t.Fatalf("root mass %v, want %v", tree.mass, want)
	}
}

func TestTreeCenterOfMass(t *testing.T) {
	bodies := mkBodies(50)
	tree := buildTree(bodies)
	var m float64
	var com [3]float64
	for _, b := range bodies {
		m += b.mass
		for d := 0; d < 3; d++ {
			com[d] += b.pos[d] * b.mass
		}
	}
	for d := 0; d < 3; d++ {
		com[d] /= m
		if math.Abs(tree.com[d]-com[d]) > 1e-9 {
			t.Fatalf("com[%d] = %v, want %v", d, tree.com[d], com[d])
		}
	}
}

func TestTreeContainsEveryBody(t *testing.T) {
	bodies := mkBodies(100)
	tree := buildTree(bodies)
	seen := map[int]bool{}
	var walk func(c *cell)
	walk = func(c *cell) {
		if c == nil {
			return
		}
		if c.leaf {
			seen[c.body] = true
			return
		}
		for _, k := range c.kids {
			walk(k)
		}
	}
	walk(tree)
	if len(seen) != len(bodies) {
		t.Fatalf("tree holds %d bodies, want %d", len(seen), len(bodies))
	}
}

// TestThetaZeroMatchesDirectSum: with theta=0 the tree walk opens every
// cell, so the force equals the direct O(N²) sum.
func TestThetaZeroMatchesDirectSum(t *testing.T) {
	bodies := mkBodies(40)
	tree := buildTree(bodies)
	const eps = 0.5
	for i := 0; i < 5; i++ {
		got := tree.force(bodies[i].pos, 0, eps, i, bodies)
		var want [3]float64
		for j, b := range bodies {
			if j == i {
				continue
			}
			addForce(bodies[i].pos, b.pos, b.mass, eps, &want)
		}
		for d := 0; d < 3; d++ {
			if math.Abs(got[d]-want[d]) > 1e-9 {
				t.Fatalf("body %d axis %d: got %v, want %v", i, d, got[d], want[d])
			}
		}
	}
}

// TestThetaOneApproximatesDirectSum: at the paper's tolerance the error
// should be small but the walk much cheaper.
func TestThetaOneApproximatesDirectSum(t *testing.T) {
	bodies := mkBodies(150)
	tree := buildTree(bodies)
	const eps = 0.5
	for i := 0; i < 5; i++ {
		approx := tree.force(bodies[i].pos, 1.0, eps, i, bodies)
		exact := tree.force(bodies[i].pos, 0, eps, i, bodies)
		mag := math.Sqrt(exact[0]*exact[0] + exact[1]*exact[1] + exact[2]*exact[2])
		errv := math.Sqrt((approx[0]-exact[0])*(approx[0]-exact[0]) +
			(approx[1]-exact[1])*(approx[1]-exact[1]) +
			(approx[2]-exact[2])*(approx[2]-exact[2]))
		if errv > 0.25*mag+1e-6 {
			t.Fatalf("body %d: approximation error %v vs magnitude %v", i, errv, mag)
		}
	}
}
