package apputil

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBlockCoversAllItems(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16%1000) + 1
		procs := int(p8%16) + 1
		covered := 0
		prevHi := 0
		for p := 0; p < procs; p++ {
			lo, hi := Block(n, procs, p)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBalance(t *testing.T) {
	// No processor gets more than one extra item.
	for _, c := range []struct{ n, procs int }{{10, 3}, {7, 7}, {5, 8}, {100, 9}} {
		minSz, maxSz := 1<<30, 0
		for p := 0; p < c.procs; p++ {
			lo, hi := Block(c.n, c.procs, p)
			sz := hi - lo
			minSz = min(minSz, sz)
			maxSz = max(maxSz, sz)
		}
		if maxSz-minSz > 1 {
			t.Errorf("Block(%d,%d): sizes range %d..%d", c.n, c.procs, minSz, maxSz)
		}
	}
}

func TestOwnerConsistentWithBlock(t *testing.T) {
	f := func(n16 uint16, p8 uint8, i16 uint16) bool {
		n := int(n16%500) + 1
		procs := int(p8%8) + 1
		i := int(i16) % n
		owner := Owner(n, procs, i)
		lo, hi := Block(n, procs, owner)
		return i >= lo && i < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := RNG(42, 7)
	b := RNG(42, 7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed/stream must produce identical sequences")
		}
	}
	c := RNG(42, 8)
	same := true
	d := RNG(42, 7)
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different streams should differ")
	}
}

func TestTimerDiscardsFirstIteration(t *testing.T) {
	var tm Timer
	for i := 0; i < 4; i++ {
		tm.StartIter()
		time.Sleep(time.Millisecond)
		tm.EndIter()
	}
	n, total := tm.Timed()
	if n != 3 {
		t.Fatalf("timed iterations = %d, want 3", n)
	}
	if total < 2*time.Millisecond {
		t.Fatalf("total %v too small", total)
	}
}

func TestTimerEdgeCases(t *testing.T) {
	var tm Timer
	if n, total := tm.Timed(); n != 0 || total != 0 {
		t.Fatal("empty timer should report zero")
	}
	tm.EndIter() // without StartIter: ignored
	tm.StartIter()
	tm.EndIter()
	if n, _ := tm.Timed(); n != 1 {
		t.Fatalf("single iteration reports %d", n)
	}
}
