// Package apputil holds helpers shared by the benchmark applications:
// block partitioning, deterministic random sources, and the common result
// record the experiment harness consumes.
package apputil

import (
	"math/rand"
	"time"
)

// Result is what every benchmark returns from its Run function.
type Result struct {
	// Name is the benchmark name ("em3d", "tsp", ...).
	Name string
	// Runtime is "ace" or "crl".
	Runtime string
	// Protocols describes the protocol configuration ("sc",
	// "update/update", ...), for reporting.
	Protocols string
	// Iters is the number of timed iterations (first iteration
	// discarded, per the paper's methodology).
	Iters int
	// TimePerIter is the mean time per timed iteration, maximized across
	// processors (the slowest processor defines progress).
	TimePerIter time.Duration
	// Total is the total timed duration.
	Total time.Duration
	// Checksum is an application-defined correctness checksum, identical
	// across runtimes and protocols for the same configuration.
	Checksum float64
	// Msgs and Bytes are total network traffic, filled in by the
	// harness.
	Msgs, Bytes uint64
}

// Block computes the half-open range [Lo, Hi) of items owned by processor
// p out of procs, for n items, using contiguous blocks.
func Block(n, procs, p int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// Owner returns the processor owning item i under Block partitioning.
func Owner(n, procs, i int) int {
	for p := 0; p < procs; p++ {
		lo, hi := Block(n, procs, p)
		if i >= lo && i < hi {
			return p
		}
	}
	return procs - 1
}

// RNG returns a deterministic random source for the given seed and stream
// id, so every processor derives identical graph structure without
// communication.
func RNG(seed int64, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + stream))
}

// Timer measures per-iteration times, discarding the first iteration
// (cold start), as in Section 5.1.
type Timer struct {
	start    time.Time
	times    []time.Duration
	began    bool
	iterOpen bool
}

// StartIter marks the beginning of an iteration.
func (t *Timer) StartIter() {
	t.start = time.Now()
	t.iterOpen = true
}

// EndIter marks the end of an iteration.
func (t *Timer) EndIter() {
	if !t.iterOpen {
		return
	}
	t.iterOpen = false
	t.times = append(t.times, time.Since(t.start))
}

// Timed returns the number of timed iterations (all but the first) and
// their total duration.
func (t *Timer) Timed() (int, time.Duration) {
	if len(t.times) <= 1 {
		if len(t.times) == 1 {
			return 1, t.times[0]
		}
		return 0, 0
	}
	var tot time.Duration
	for _, d := range t.times[1:] {
		tot += d
	}
	return len(t.times) - 1, tot
}
