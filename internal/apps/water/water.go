// Package water implements a Water-style molecular dynamics benchmark
// (SPLASH): each iteration alternates an inter-molecular phase — O(N²)
// pairwise force computation whose contributions are accumulated into
// molecules owned by other processors — and an intra-molecular phase that
// integrates each processor's own molecules.
//
// The application-specific optimization (Sections 2.2 and 5.2) is phase
// protocol switching: pipelined (split-phase, additive) writes during the
// inter-molecular phase and a null protocol during the intra-molecular
// phase, which the paper reports gives a speedup of two over a
// sequentially consistent execution.
package water

import (
	"fmt"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

// Config parameterizes the benchmark. The paper used 512 molecules and 3
// steps.
type Config struct {
	Molecules int
	Steps     int
	DT        float64
	Seed      int64

	// PhaseProtocols enables the paper's optimization: the molecule
	// space runs "pipeline" during the inter-molecular phase and "null"
	// during the intra-molecular phase, switching with ChangeProtocol.
	PhaseProtocols bool
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Molecules: 64, Steps: 5, DT: 0.001, Seed: 5}
}

// Molecule region layout, in float64 slots.
const (
	slotPX = iota
	slotPY
	slotPZ
	slotVX
	slotVY
	slotVZ
	slotFX
	slotFY
	slotFZ
	molSlots
)

// Run executes Water on rt.
func Run(rt rtiface.RT, cfg Config) (apputil.Result, error) {
	label := "sc"
	if cfg.PhaseProtocols {
		label = "pipeline/null"
	}
	res := apputil.Result{Name: "water", Runtime: rt.Name(), Protocols: label}
	if cfg.Molecules < rt.Procs() || cfg.Steps < 2 {
		return res, fmt.Errorf("water: bad config %+v", cfg)
	}
	srt, _ := rt.(rtiface.SpaceRT)
	hasSpaces := srt != nil &&
		rt.Capabilities().Has(rtiface.CapSpaces|rtiface.CapCustomProtocols|rtiface.CapChangeProtocol)
	if cfg.PhaseProtocols && !hasSpaces {
		return res, fmt.Errorf("water: runtime %s has no spaces for phase protocols", rt.Name())
	}

	var space rtiface.SpaceID
	useSpace := cfg.PhaseProtocols
	if useSpace {
		var err error
		if space, err = srt.NewSpace("sc"); err != nil {
			return res, err
		}
	}

	n := cfg.Molecules
	lo, hi := apputil.Block(n, rt.Procs(), rt.ID())
	mine := make([]core.RegionID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if useSpace {
			mine = append(mine, srt.MallocIn(space, molSlots*8))
		} else {
			mine = append(mine, rt.Malloc(molSlots*8))
		}
	}
	ids := gatherIDs(rt, n, mine)
	for i := lo; i < hi; i++ {
		rng := apputil.RNG(cfg.Seed, int64(i))
		h := rt.Map(ids[i])
		rt.StartWrite(h)
		for d := 0; d < 3; d++ {
			h.Data().SetFloat64(slotPX+d, rng.Float64()*4-2)
			h.Data().SetFloat64(slotVX+d, 0)
			h.Data().SetFloat64(slotFX+d, 0)
		}
		rt.EndWrite(h)
		rt.Unmap(h)
	}
	rt.Barrier()

	if useSpace {
		if err := srt.ChangeProtocol(space, "pipeline"); err != nil {
			return res, err
		}
	}

	pos := make([][3]float64, n)
	delta := make([][3]float64, n)
	var tm apputil.Timer
	for step := 0; step < cfg.Steps; step++ {
		tm.StartIter()

		// --- Inter-molecular phase ---
		// Read all positions once.
		for i, id := range ids {
			h := rt.Map(id)
			rt.StartRead(h)
			pos[i] = [3]float64{h.Data().Float64(slotPX), h.Data().Float64(slotPY), h.Data().Float64(slotPZ)}
			rt.EndRead(h)
			rt.Unmap(h)
		}
		// Accumulate pairwise force contributions locally. Each pair is
		// computed exactly once, by the owner of its lower-index
		// molecule (Newton's third law), so contributions to the
		// higher-index molecule often target remote regions.
		for i := range delta {
			delta[i] = [3]float64{}
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				f := pairForce(pos[i], pos[j])
				for d := 0; d < 3; d++ {
					delta[i][d] += f[d]
					delta[j][d] -= f[d]
				}
			}
		}
		// Ship the accumulated contributions: one additive write section
		// per molecule touched. Under "pipeline" remote sections are
		// zero-initialized scratch, so += writes the delta; under "sc"
		// the fetched copy is current, so += adds correctly. Identical
		// source, both protocols.
		for j := 0; j < n; j++ {
			if delta[j] == ([3]float64{}) {
				continue
			}
			h := rt.Map(ids[j])
			rt.StartWrite(h)
			d := h.Data()
			d.SetFloat64(slotFX, d.Float64(slotFX)+delta[j][0])
			d.SetFloat64(slotFY, d.Float64(slotFY)+delta[j][1])
			d.SetFloat64(slotFZ, d.Float64(slotFZ)+delta[j][2])
			rt.EndWrite(h)
			rt.Unmap(h)
		}
		if useSpace {
			srt.BarrierSpace(space) // drains the write pipeline
		} else {
			rt.Barrier()
		}

		// --- Intra-molecular phase ---
		if useSpace {
			if err := srt.ChangeProtocol(space, "null"); err != nil {
				return res, err
			}
		}
		for i := lo; i < hi; i++ {
			h := rt.Map(ids[i])
			rt.StartWrite(h)
			d := h.Data()
			for k := 0; k < 3; k++ {
				v := d.Float64(slotVX+k) + d.Float64(slotFX+k)*cfg.DT
				d.SetFloat64(slotVX+k, v)
				d.SetFloat64(slotPX+k, d.Float64(slotPX+k)+v*cfg.DT)
				d.SetFloat64(slotFX+k, 0)
			}
			rt.EndWrite(h)
			rt.Unmap(h)
		}
		if useSpace {
			if err := srt.ChangeProtocol(space, "pipeline"); err != nil {
				return res, err
			}
		} else {
			rt.Barrier()
		}
		tm.EndIter()
	}

	sum := 0.0
	for i := lo; i < hi; i++ {
		h := rt.Map(ids[i])
		rt.StartRead(h)
		sum += h.Data().Float64(slotPX) + h.Data().Float64(slotPY) + h.Data().Float64(slotPZ)
		rt.EndRead(h)
		rt.Unmap(h)
	}
	res.Checksum = rt.AllReduceFloat64(core.OpSum, sum)

	iters, total := tm.Timed()
	res.Iters = iters
	res.Total = time.Duration(rt.AllReduceInt64(core.OpMax, int64(total)))
	if iters > 0 {
		res.TimePerIter = res.Total / time.Duration(iters)
	}
	rt.Barrier()
	return res, nil
}

// pairForce is a softened inverse-square attraction, standing in for the
// SPLASH code's water potential; what matters to the runtime is the
// access pattern, not the physics.
func pairForce(a, b [3]float64) [3]float64 {
	dx := b[0] - a[0]
	dy := b[1] - a[1]
	dz := b[2] - a[2]
	r2 := dx*dx + dy*dy + dz*dz + 0.25
	inv := 1 / (r2 * r2)
	return [3]float64{dx * inv, dy * inv, dz * inv}
}

func gatherIDs(rt rtiface.RT, n int, mine []core.RegionID) []core.RegionID {
	all := make([]core.RegionID, 0, n)
	for p := 0; p < rt.Procs(); p++ {
		if p == rt.ID() {
			all = append(all, rt.BroadcastIDs(p, mine)...)
		} else {
			lo, hi := apputil.Block(n, rt.Procs(), p)
			all = append(all, rt.BroadcastIDs(p, make([]core.RegionID, hi-lo))...)
		}
	}
	return all
}
