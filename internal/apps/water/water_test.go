package water_test

import (
	"math"
	"testing"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/water"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

func run(t *testing.T, procs int, cfg water.Config, crl bool) apputil.Result {
	t.Helper()
	app := func(rt rtiface.RT) (apputil.Result, error) { return water.Run(rt, cfg) }
	var res apputil.Result
	var err error
	if crl {
		res, err = bench.RunCRL(procs, app)
	} else {
		res, err = bench.RunAce(procs, app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallCfg() water.Config {
	return water.Config{Molecules: 20, Steps: 3, DT: 0.001, Seed: 5}
}

// closeTo allows for the pipeline protocol's arrival-order float
// combining.
func closeTo(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPhaseProtocolsMatchSC(t *testing.T) {
	sc := run(t, 4, smallCfg(), false)
	cfg := smallCfg()
	cfg.PhaseProtocols = true
	custom := run(t, 4, cfg, false)
	if !closeTo(sc.Checksum, custom.Checksum) {
		t.Fatalf("pipeline/null checksum %v != sc %v", custom.Checksum, sc.Checksum)
	}
}

func TestResultIndependentOfProcs(t *testing.T) {
	base := run(t, 1, smallCfg(), false)
	for _, procs := range []int{2, 4, 5} {
		if got := run(t, procs, smallCfg(), false); !closeTo(got.Checksum, base.Checksum) {
			t.Errorf("procs=%d: checksum %v != %v", procs, got.Checksum, base.Checksum)
		}
	}
}

func TestRunsOnCRL(t *testing.T) {
	ace := run(t, 3, smallCfg(), false)
	crl := run(t, 3, smallCfg(), true)
	if !closeTo(ace.Checksum, crl.Checksum) {
		t.Fatalf("ace %v != crl %v", ace.Checksum, crl.Checksum)
	}
}

func TestPipelineReducesTraffic(t *testing.T) {
	cfg := water.Config{Molecules: 32, Steps: 4, DT: 0.001, Seed: 5}
	sc := run(t, 4, cfg, false)
	cfg.PhaseProtocols = true
	custom := run(t, 4, cfg, false)
	if custom.Msgs >= sc.Msgs {
		t.Fatalf("pipeline/null msgs %d >= sc msgs %d", custom.Msgs, sc.Msgs)
	}
}

func TestCRLRejectsPhaseProtocols(t *testing.T) {
	cfg := smallCfg()
	cfg.PhaseProtocols = true
	_, err := bench.RunCRL(2, func(rt rtiface.RT) (apputil.Result, error) { return water.Run(rt, cfg) })
	if err == nil {
		t.Fatal("CRL should reject phase protocols")
	}
}

func TestBadConfig(t *testing.T) {
	_, err := bench.RunAce(8, func(rt rtiface.RT) (apputil.Result, error) {
		return water.Run(rt, water.Config{Molecules: 4, Steps: 3})
	})
	if err == nil {
		t.Fatal("fewer molecules than procs should be rejected")
	}
}
