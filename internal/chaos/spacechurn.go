package chaos

// Space-churn cells: waves of collective NewSpace / bracket traffic /
// FreeSpace on a fault-injecting transport. Where the conformance
// matrix checks what protocols do to shared data, these cells check
// what the lifecycle does to the space table itself, under the same
// fault policies:
//
//   - bounded table: a wave of W spaces freed in a seeded order must
//     recycle its slots — the table never grows past base+W across any
//     number of waves;
//   - stale-ID rejection: every freed space's generation-tagged ref
//     must keep failing SpaceByRef with ErrStaleSpace, even after its
//     slot is reoccupied;
//   - generation advance: a recycled slot's new space must never
//     carry a generation already seen on a freed ref;
//   - coherence on churned spaces: a home write bracketed on a fresh
//     space must be visible to every processor after one barrier,
//     exactly as on a long-lived space.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/proto"
)

// RunSpaceChurn executes one space-churn cell and reports the outcome.
// Config reuse: Regions is the wave width (spaces live at once,
// default 4), Turns the wave count (default 6).
func RunSpaceChurn(cfg Config) Report {
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 4
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 6
	}
	if cfg.Policy == "" {
		cfg.Policy = "clean"
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "sc"
	}
	rep := Report{
		Protocol: cfg.Protocol,
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		Replay: fmt.Sprintf("go test -run 'TestSpaceChurnFixedSeeds/%s/%s' ./internal/chaos",
			cfg.Protocol, cfg.Policy),
	}
	pol, err := PolicyByName(cfg.Policy, cfg.Seed)
	if err != nil {
		rep.Err = err
		return rep
	}
	cl, err := core.NewCluster(core.Options{
		Procs:    cfg.Procs,
		Registry: proto.NewRegistry(),
		Faults:   pol,
		// As in Run: a lifecycle hang under faults must fail typed, not
		// wedge the suite.
		SyncTimeout: 2 * time.Minute,
	})
	if err != nil {
		rep.Err = err
		return rep
	}
	defer cl.Close()
	rep.Err = cl.Run(spaceChurnWorker(cfg))
	m := cl.Metrics()
	rep.Faults = m.Net.Faults
	return rep
}

// spaceChurnWorker is the SPMD body: every processor executes the
// identical seeded collective sequence (the collective-call discipline
// demands it), so the free order is a pure function of (seed, wave).
// Writes are home-only, which every library protocol permits.
func spaceChurnWorker(cfg Config) func(p *core.Proc) error {
	width, waves := cfg.Regions, cfg.Turns
	return func(p *core.Proc) error {
		base := p.SpaceSlots()
		bound := base + width
		var stale []core.SpaceRef
		staleSet := make(map[core.SpaceRef]bool)
		for w := 0; w < waves; w++ {
			sps := make([]*core.Space, width)
			regs := make([]*core.Region, width)
			homes := make([]int, width)
			for i := range sps {
				sp, err := p.NewSpace(cfg.Protocol)
				if err != nil {
					return fmt.Errorf("wave %d: new space: %w", w, err)
				}
				if staleSet[sp.Ref()] {
					return fmt.Errorf("wave %d: recycled slot reissued stale ref %v", w, sp.Ref())
				}
				sps[i] = sp
				// One region per space, homed round-robin; the home
				// allocates, the id is broadcast, and everyone maps and
				// touches it so push protocols see the full sharer set.
				homes[i] = (w + i) % cfg.Procs
				var id core.RegionID
				if p.ID() == homes[i] {
					var err error
					id, err = p.GMallocE(sp, 64)
					if err != nil {
						return fmt.Errorf("wave %d: alloc: %w", w, err)
					}
				}
				id = p.BroadcastID(homes[i], id)
				regs[i] = p.Map(id)
				p.StartRead(regs[i])
				p.EndRead(regs[i])
				p.Barrier(sp)
			}
			// The home writes, visibility checked by everyone after the
			// barrier: churned spaces are coherent like any other.
			for i := range sps {
				val := int64(w*width + i + 1)
				if p.ID() == homes[i] {
					p.StartWrite(regs[i])
					regs[i].Data.SetInt64(0, val)
					p.EndWrite(regs[i])
				}
				p.Barrier(sps[i])
				p.StartRead(regs[i])
				got := regs[i].Data.Int64(0)
				p.EndRead(regs[i])
				if got != val {
					return fmt.Errorf("wave %d space %d: proc %d read %d, want %d",
						w, i, p.ID(), got, val)
				}
				p.Barrier(sps[i])
			}
			// Free in a seeded order shared by every processor.
			order := rand.New(rand.NewSource(cfg.Seed + int64(w))).Perm(width)
			for _, i := range order {
				ref := sps[i].Ref()
				if err := p.FreeSpace(sps[i]); err != nil {
					return fmt.Errorf("wave %d: free space %v: %w", w, ref, err)
				}
				stale = append(stale, ref)
				staleSet[ref] = true
			}
			if got := p.SpaceSlots(); got > bound {
				return fmt.Errorf("wave %d: space table grew past its bound: %d > %d (base %d, width %d)",
					w, got, bound, base, width)
			}
			for _, ref := range stale {
				if _, err := p.SpaceByRef(ref); !errors.Is(err, core.ErrStaleSpace) {
					return fmt.Errorf("wave %d: stale ref %v resolved (err=%v), want ErrStaleSpace",
						w, ref, err)
				}
			}
		}
		return nil
	}
}
