package chaos

import (
	"strings"
	"testing"
)

// rejoinProtocols are the push-family and invalidate protocols the
// rejoin acceptance gate pins (the full matrix lives in the plain
// conformance suite; the rejoin drill adds the crash/restore axis).
var rejoinProtocols = []string{"sc", "update", "staticupdate", "writethrough"}

// TestRejoinFixedSeeds: kill → rejoin under every timing policy, for
// the fixed seeds. The drill checkpoints mid-schedule, kills a
// seed-picked victim, revives, restores through the binary codec, and
// re-executes to the sequential model's answer.
func TestRejoinFixedSeeds(t *testing.T) {
	seeds := fixedSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, protocol := range rejoinProtocols {
		for _, policy := range []string{"clean", "jittery", "lossy", "partitioned"} {
			protocol, policy := protocol, policy
			t.Run(protocol+"/"+policy, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					rep := RunRejoin(RejoinConfig{Config: Config{
						Seed: seed, Protocol: protocol, Policy: policy,
					}})
					if rep.Err != nil {
						t.Fatal(FormatReport(rep))
					}
				}
			})
		}
	}
}

// TestBrokenRejoinCaught pins the rejoin drill's teeth the way the
// broken protocol pins the conformance harness's: a damaged checkpoint
// must fail the rejoin loudly and deterministically — a truncated file
// at decode time, a silently corrupted one at the restore audit — and
// two runs with the same seed must produce the identical error.
func TestBrokenRejoinCaught(t *testing.T) {
	truncate := func(rank int, enc []byte) []byte {
		if rank == 0 {
			return enc[:len(enc)/2]
		}
		return enc
	}
	first := RunRejoin(RejoinConfig{Config: Config{Seed: 1, Protocol: "sc"}, Mutate: truncate})
	if first.Err == nil {
		t.Fatal("truncated checkpoint passed the rejoin drill")
	}
	if !strings.Contains(first.Err.Error(), "checkpoint") {
		t.Fatalf("truncation error does not blame the checkpoint: %v", first.Err)
	}
	second := RunRejoin(RejoinConfig{Config: Config{Seed: 1, Protocol: "sc"}, Mutate: truncate})
	if second.Err == nil || second.Err.Error() != first.Err.Error() {
		t.Fatalf("truncation replay diverged:\n  first:  %v\n  second: %v", first.Err, second.Err)
	}

	// Flip the high byte of the last checkpointed value on rank 0: the
	// codec accepts it, so the restore audit must catch the divergence
	// from the model at the checkpoint.
	flip := func(rank int, enc []byte) []byte {
		if rank == 0 {
			enc = append([]byte(nil), enc...)
			enc[len(enc)-1] ^= 0xff
		}
		return enc
	}
	corA := RunRejoin(RejoinConfig{Config: Config{Seed: 1, Protocol: "sc"}, Mutate: flip})
	if corA.Err == nil {
		t.Fatal("corrupted checkpoint passed the rejoin drill")
	}
	if !strings.Contains(corA.Err.Error(), "restored region") {
		t.Fatalf("corruption was not caught by the restore audit: %v", corA.Err)
	}
	corB := RunRejoin(RejoinConfig{Config: Config{Seed: 1, Protocol: "sc"}, Mutate: flip})
	if corB.Err == nil || corB.Err.Error() != corA.Err.Error() {
		t.Fatalf("corruption replay diverged:\n  first:  %v\n  second: %v", corA.Err, corB.Err)
	}
}

// TestMigrateFixedSeeds: MigrateHome mid-workload across the push
// family (and sc), under the per-message policies, for the fixed
// seeds. The drill rotates region homes every few turns while the
// model-checked schedule runs, then proves the new homes are
// first-class writers.
func TestMigrateFixedSeeds(t *testing.T) {
	seeds := fixedSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, protocol := range []string{"sc", "update", "staticupdate", "writethrough"} {
		for _, policy := range []string{"clean", "jittery", "lossy"} {
			protocol, policy := protocol, policy
			t.Run(protocol+"/"+policy, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					rep := RunMigrate(MigrateConfig{Config: Config{
						Seed: seed, Protocol: protocol, Policy: policy,
					}})
					if rep.Err != nil {
						t.Fatal(FormatReport(rep))
					}
				}
			})
		}
	}
}
