package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/proto"
)

// This file extends the conformance harness to elastic membership: the
// rejoin drill (checkpoint, kill a processor mid-schedule, revive it,
// and re-execute from the checkpoint to the model's answer) and the
// re-homing drill (MigrateHome collectives interleaved with the
// model-checked schedule). Both inherit the harness's determinism
// contract: a run is identified by (protocol, policy, seed) and a
// failure reproduces exactly.

// RejoinConfig selects one rejoin drill. The embedded Config fields
// mean what they mean for Run; the policy's fault layer is always
// present (a "clean" rejoin still needs the fault-injecting transport,
// since Kill lives there — it just injects nothing).
type RejoinConfig struct {
	Config

	// Mutate, if non-nil, rewrites each rank's encoded checkpoint
	// between the crash and the rejoin — the hook the broken-rejoin
	// double uses to prove a damaged checkpoint is caught loudly
	// (decode error or model divergence), never silently installed.
	Mutate func(rank int, enc []byte) []byte
}

// RunRejoin executes one rejoin drill: the model-checked schedule runs
// with a collective checkpoint a third of the way in, a seed-picked
// victim is killed two thirds in, the run fails with ErrPeerLost, and
// the cluster is revived and resumed — every rank restores its
// checkpoint (round-tripped through the binary codec, as a real rejoin
// would read it from disk), fences the restore collectively, audits
// the restored state against the sequential model at the checkpoint,
// and re-executes the rest of the schedule to the model's answer.
func RunRejoin(cfg RejoinConfig) Report {
	if cfg.Procs <= 1 {
		cfg.Procs = 4
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 5
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 40
	}
	if cfg.Policy == "" {
		cfg.Policy = "clean"
	}
	rep := Report{
		Protocol: cfg.Protocol,
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		Replay: fmt.Sprintf("go test ./internal/chaos -run 'TestRejoinFixedSeeds/%s/%s' (seed %d)",
			cfg.Protocol, cfg.Policy, cfg.Seed),
	}
	pol, err := PolicyByName(cfg.Policy, cfg.Seed)
	if err != nil {
		rep.Err = err
		return rep
	}
	if pol == nil {
		// Kill lives on the fault layer, so the clean drill runs with an
		// empty policy rather than none.
		pol = &faultnet.Policy{Seed: cfg.Seed}
	}
	reg := proto.NewRegistry()
	if _, ok := reg.Lookup(cfg.Protocol); !ok {
		rep.Err = fmt.Errorf("chaos: unknown protocol %q", cfg.Protocol)
		return rep
	}
	cl, err := core.NewCluster(core.Options{
		Procs:           cfg.Procs,
		Registry:        reg,
		DefaultProtocol: cfg.Protocol,
		DispatchLanes:   cfg.Lanes,
		Faults:          pol,
		SyncTimeout:     2 * time.Minute,
	})
	if err != nil {
		rep.Err = err
		return rep
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := genSchedule(rng, cfg.Procs, cfg.Regions, cfg.Turns)
	if homeRestricted(cfg.Protocol) {
		for i := range ops {
			if ops[i].write {
				ops[i].proc = ops[i].region % cfg.Procs
			}
		}
	}
	victim := 1 + rng.Intn(cfg.Procs-1)
	ckptTurn := cfg.Turns / 3
	if ckptTurn < 1 {
		ckptTurn = 1
	}
	killTurn := 2 * cfg.Turns / 3
	if killTurn <= ckptTurn {
		killTurn = ckptTurn + 1
	}

	// Each rank's handles and encoded checkpoint cross from the crashed
	// run into the resumed one; ranks write disjoint slots and Run/Resume
	// joins order the accesses.
	handles := make([][]*core.Region, cfg.Procs)
	saved := make([][]byte, cfg.Procs)

	err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		hs := setupRegions(p, sp, cfg.Regions)
		handles[p.ID()] = hs
		model := make([]int64, cfg.Regions)
		for i, op := range ops {
			if i == ckptTurn {
				ck, err := p.Checkpoint(uint64(i))
				if err != nil {
					return err
				}
				saved[p.ID()] = core.EncodeCheckpoint(ck)
			}
			if i == killTurn && p.ID() == 0 {
				cl.FaultNet().Kill(amnet.NodeID(victim))
			}
			if op.proc == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else if i < killTurn {
					// Reads once the kill is in flight are unsynchronized
					// by construction; the post-rejoin re-execution is
					// where the model check resumes.
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					if want := model[op.region]; got != want {
						return fmt.Errorf("rejoin %s/%s seed %d: op %d: proc %d read region %d = %d, model says %d",
							cfg.Protocol, cfg.Policy, cfg.Seed, i, p.ID(), op.region, got, want)
					}
				}
			}
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}
		return fmt.Errorf("rejoin %s/%s seed %d: proc %d survived the kill turn", cfg.Protocol, cfg.Policy, cfg.Seed, p.ID())
	})
	if err == nil {
		rep.Err = fmt.Errorf("rejoin %s/%s seed %d: killing proc %d did not take the run down",
			cfg.Protocol, cfg.Policy, cfg.Seed, victim)
		return rep
	}
	if !errors.Is(err, core.ErrPeerLost) {
		rep.Err = fmt.Errorf("rejoin %s/%s seed %d: crashed run failed with %w, want ErrPeerLost",
			cfg.Protocol, cfg.Policy, cfg.Seed, err)
		return rep
	}
	for r, enc := range saved {
		if enc == nil {
			rep.Err = fmt.Errorf("rejoin %s/%s seed %d: rank %d has no checkpoint from before the kill",
				cfg.Protocol, cfg.Policy, cfg.Seed, r)
			return rep
		}
	}

	if cfg.Mutate != nil {
		for r := range saved {
			saved[r] = cfg.Mutate(r, saved[r])
		}
	}
	// Decode every rank up front: a damaged checkpoint file must fail
	// the rejoin before anyone resumes, not strand peers whose restore
	// partner bailed mid-collective.
	cks := make([]*core.Checkpoint, cfg.Procs)
	for r, enc := range saved {
		ck, err := core.DecodeCheckpoint(enc)
		if err != nil {
			rep.Err = fmt.Errorf("rejoin %s/%s seed %d: rank %d checkpoint rejected: %w",
				cfg.Protocol, cfg.Policy, cfg.Seed, r, err)
			return rep
		}
		cks[r] = ck
	}

	fn := cl.FaultNet()
	fn.Revive(amnet.NodeID(victim))
	fn.Quiesce()
	if err := cl.Revive(); err != nil {
		rep.Err = err
		return rep
	}
	rep.Err = cl.Resume(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		hs := handles[p.ID()]
		if err := p.RestoreCheckpoint(cks[p.ID()]); err != nil {
			return err
		}
		// Restore is local; fence it collectively so no processor's
		// first remote fetch can race a peer still installing its image.
		p.GlobalBarrier()

		model := make([]int64, cfg.Regions)
		for _, op := range ops[:ckptTurn] {
			if op.write {
				model[op.region] = op.value
			}
		}
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		// Audit: the restored cut must equal the model at the checkpoint
		// on every processor before any re-execution muddies it.
		for r := 0; r < cfg.Regions; r++ {
			p.StartRead(hs[r])
			got := hs[r].Data.Int64(0)
			p.EndRead(hs[r])
			if want := model[r]; got != want {
				fail(fmt.Errorf("rejoin %s/%s seed %d: restored region %d = %d, model at checkpoint says %d",
					cfg.Protocol, cfg.Policy, cfg.Seed, r, got, want))
			}
		}
		p.Barrier(sp)

		// Re-execute from the checkpoint's cursor. Determinism makes the
		// replayed writes bit-identical, so the model check is exactly the
		// crashed run's check for the same turns.
		for i := ckptTurn; i < len(ops); i++ {
			op := ops[i]
			if op.proc == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else {
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					if want := model[op.region]; got != want {
						fail(fmt.Errorf("rejoin %s/%s seed %d: replayed op %d: proc %d read region %d = %d, model says %d",
							cfg.Protocol, cfg.Policy, cfg.Seed, i, p.ID(), op.region, got, want))
					}
				}
			}
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}
		for r := 0; r < cfg.Regions; r++ {
			p.StartRead(hs[r])
			got := hs[r].Data.Int64(0)
			p.EndRead(hs[r])
			if want := model[r]; got != want {
				fail(fmt.Errorf("rejoin %s/%s seed %d: final state: region %d = %d, model says %d",
					cfg.Protocol, cfg.Policy, cfg.Seed, r, got, want))
			}
		}
		p.Barrier(sp)
		return firstErr
	})
	rep.Faults = cl.Metrics().Net.Faults
	return rep
}

// MigrateConfig selects one re-homing drill. MigrateEvery is the turn
// stride between MigrateHome collectives; zero picks a default that
// lands several migrations inside the schedule.
type MigrateConfig struct {
	Config
	MigrateEvery int
}

// RunMigrate executes the model-checked schedule with region re-homing
// interleaved: every MigrateEvery turns, one region's home rotates to
// the next processor by a MigrateHome collective, and the schedule
// keeps checking reads against the sequential model across the move.
// Home-restricted protocols follow the moving home — the processor
// issuing a region's writes is always its current home, which is the
// re-homing feature's whole point.
func RunMigrate(cfg MigrateConfig) Report {
	if cfg.Procs <= 1 {
		cfg.Procs = 4
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 5
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 40
	}
	if cfg.Policy == "" {
		cfg.Policy = "clean"
	}
	if cfg.MigrateEvery <= 0 {
		cfg.MigrateEvery = cfg.Turns / 8
		if cfg.MigrateEvery < 3 {
			cfg.MigrateEvery = 3
		}
	}
	rep := Report{
		Protocol: cfg.Protocol,
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		Replay: fmt.Sprintf("go test ./internal/chaos -run 'TestMigrateFixedSeeds/%s/%s' (seed %d)",
			cfg.Protocol, cfg.Policy, cfg.Seed),
	}
	pol, err := PolicyByName(cfg.Policy, cfg.Seed)
	if err != nil {
		rep.Err = err
		return rep
	}
	reg := proto.NewRegistry()
	if _, ok := reg.Lookup(cfg.Protocol); !ok {
		rep.Err = fmt.Errorf("chaos: unknown protocol %q", cfg.Protocol)
		return rep
	}
	cl, err := core.NewCluster(core.Options{
		Procs:           cfg.Procs,
		Registry:        reg,
		DefaultProtocol: cfg.Protocol,
		DispatchLanes:   cfg.Lanes,
		Faults:          pol,
		SyncTimeout:     2 * time.Minute,
	})
	if err != nil {
		rep.Err = err
		return rep
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := genSchedule(rng, cfg.Procs, cfg.Regions, cfg.Turns)
	rep.Err = cl.Run(func(p *core.Proc) error {
		sp := p.DefaultSpace()
		hs := setupRegions(p, sp, cfg.Regions)
		model := make([]int64, cfg.Regions)
		// homeOf tracks each region's current home; it evolves
		// identically on every processor because migrations are
		// schedule-positional.
		homeOf := make([]int, cfg.Regions)
		for r := range homeOf {
			homeOf[r] = r % cfg.Procs
		}
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		migrations := 0
		for i, op := range ops {
			if i > 0 && i%cfg.MigrateEvery == 0 {
				rr := (i / cfg.MigrateEvery) % cfg.Regions
				next := (homeOf[rr] + 1) % cfg.Procs
				if err := p.MigrateHome(sp, hs[rr].ID, amnet.NodeID(next)); err != nil {
					return err // collective misuse, not a coherence divergence
				}
				homeOf[rr] = next
				migrations++
			}
			who := op.proc
			if op.write && homeRestricted(cfg.Protocol) {
				who = homeOf[op.region]
			}
			if who == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else {
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					if want := model[op.region]; got != want {
						fail(fmt.Errorf("migrate %s/%s seed %d: op %d: proc %d read region %d = %d, model says %d",
							cfg.Protocol, cfg.Policy, cfg.Seed, i, p.ID(), op.region, got, want))
					}
				}
			}
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}
		if migrations == 0 {
			fail(fmt.Errorf("migrate %s/%s seed %d: schedule performed no migrations (stride %d, %d turns)",
				cfg.Protocol, cfg.Policy, cfg.Seed, cfg.MigrateEvery, cfg.Turns))
		}
		// The directory really moved: every processor's view of each
		// region names the tracked home.
		for r := 0; r < cfg.Regions; r++ {
			if got := int(hs[r].Home); got != homeOf[r] {
				fail(fmt.Errorf("migrate %s/%s seed %d: proc %d sees region %d homed at %d, tracking says %d",
					cfg.Protocol, cfg.Policy, cfg.Seed, p.ID(), r, got, homeOf[r]))
			}
		}
		check := func(stage string) {
			for r := 0; r < cfg.Regions; r++ {
				p.StartRead(hs[r])
				got := hs[r].Data.Int64(0)
				p.EndRead(hs[r])
				if want := model[r]; got != want {
					fail(fmt.Errorf("migrate %s/%s seed %d: %s: region %d = %d, model says %d",
						cfg.Protocol, cfg.Policy, cfg.Seed, stage, r, got, want))
				}
			}
		}
		check("after migrated schedule")
		p.Barrier(sp)
		// A write round by the post-migration homes: the moved directory
		// must accept its new home as a first-class writer.
		for r := 0; r < cfg.Regions; r++ {
			if homeOf[r] == p.ID() {
				p.StartWrite(hs[r])
				hs[r].Data.SetInt64(0, model[r]+100)
				p.EndWrite(hs[r])
			}
			model[r] += 100
		}
		p.Barrier(sp)
		check("after write round at migrated homes")
		p.Barrier(sp)
		return firstErr
	})
	rep.Faults = cl.Metrics().Net.Faults
	return rep
}
