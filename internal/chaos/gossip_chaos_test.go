package chaos

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acedsm/ace/internal/amnet"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/internal/gossip"
)

// gossip packets ride an otherwise-unused handler id on the fault-
// injected fabric; addresses are node-id strings.
const hGossip amnet.HandlerID = 9

// gossipFabric runs n gossip agents over a faultnet-wrapped in-process
// network, ticking on real time. It returns the agents, the wrapped
// network (for Kill), and a stop function.
func gossipFabric(t *testing.T, n int, pol *faultnet.Policy, seed int64, mod func(i int, c *gossip.Config)) ([]*gossip.Agent, *faultnet.Network, func()) {
	t.Helper()
	inner, err := amnet.NewChanNetwork(amnet.ChanConfig{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	p := faultnet.Policy{}
	if pol != nil {
		p = *pol
	}
	nw := faultnet.Wrap(inner, p)
	eps := nw.Endpoints()
	agents := make([]*gossip.Agent, n)
	for i := 0; i < n; i++ {
		ep := eps[i]
		send := func(addr string, pkt []byte) {
			dst, err := strconv.Atoi(addr)
			if err != nil || dst < 0 || dst >= n {
				return
			}
			buf := amnet.Alloc(len(pkt))
			copy(buf, pkt)
			ep.Send(amnet.Msg{Dst: amnet.NodeID(dst), Handler: hGossip, Payload: buf})
		}
		cfg := gossip.Config{
			ID:         i,
			Nodes:      n,
			Seed:       seed + int64(i),
			Fanout:     2,
			GossipAddr: strconv.Itoa(i),
			DataAddr:   "data-" + strconv.Itoa(i),
			Seeds:      []string{"0"},
		}
		if mod != nil {
			mod(i, &cfg)
		}
		a, err := gossip.New(cfg, send)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		ep.Register(hGossip, func(m amnet.Msg) {
			pkt := append([]byte(nil), m.Payload...)
			amnet.Recycle(m.Payload)
			a.Handle(pkt, time.Now())
		})
	}
	var stopped atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk := time.NewTicker(20 * time.Millisecond)
		defer tk.Stop()
		for !stopped.Load() {
			<-tk.C
			for _, a := range agents {
				a.Tick(time.Now())
			}
		}
	}()
	stop := func() {
		if stopped.CompareAndSwap(false, true) {
			<-done
			nw.Close()
		}
	}
	return agents, nw, stop
}

func waitConverged(t *testing.T, agents []*gossip.Agent, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		all := true
		for _, a := range agents {
			if !a.Converged() {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, a := range agents {
		t.Logf("node %d view: %v", a.ID(), a.View())
	}
	t.Fatal("membership did not converge")
}

// TestGossipUnderFaultPolicies: membership converges and a killed node
// is detected dead, under every timing-perturbing fault policy. The
// faultnet wrapper preserves delivery (drops are redelivered), so
// gossip sees delay, duplication, reordering and partition windows —
// the conditions its redundancy exists for.
func TestGossipUnderFaultPolicies(t *testing.T) {
	for _, policy := range []string{"jittery", "lossy", "partitioned"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			pol, err := PolicyByName(policy, 42)
			if err != nil {
				t.Fatal(err)
			}
			const n = 4
			var deadSeen [n]atomic.Int64
			agents, nw, stop := gossipFabric(t, n, pol, 42, func(i int, c *gossip.Config) {
				c.SuspectAfter = 200 * time.Millisecond
				c.DeadAfter = 600 * time.Millisecond
				c.OnDead = func(node int) { deadSeen[i].Store(int64(node + 1)) }
			})
			defer stop()
			waitConverged(t, agents, 5*time.Second)

			// Kill node 3 on the fabric: its packets stop flowing. The
			// survivors must confirm the death within a bounded number
			// of suspicion windows.
			nw.Kill(3)
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				all := true
				for i := 0; i < n-1; i++ {
					if deadSeen[i].Load() != 4 {
						all = false
						break
					}
				}
				if all {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			for i := 0; i < n-1; i++ {
				if got := deadSeen[i].Load(); got != 4 {
					t.Errorf("survivor %d OnDead saw %d, want node 3", i, got-1)
				}
			}
		})
	}
}
