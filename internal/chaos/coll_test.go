package chaos

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/acedsm/ace/internal/core"
)

// collCells are the topology/aggregation configurations the collective
// conformance gate pins, alongside the matrix's default-auto runs: the
// tree topology with and without push aggregation (above the star
// cutoff, so the tree is actually forced into use by size too), and the
// star explicitly forced with aggregation on (small cluster, so auto
// would also pick star — the point is the aggregated push path on the
// reference topology).
var collCells = []struct {
	name  string
	coll  string
	noAgg bool
	procs int
}{
	{"tree+agg", "tree", false, 5},
	{"tree+noagg", "tree", true, 5},
	{"star+agg", "star", false, 4},
}

// TestCollTopologyCells runs the update-family protocols (the ones with
// batched push paths) plus the plain-default writethrough through the
// conformance schedule on every pinned topology/aggregation cell, under
// the clean, lossy and partitioned policies.
func TestCollTopologyCells(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, protocol := range []string{"staticupdate", "update", "writethrough"} {
		for _, cell := range collCells {
			for _, policy := range []string{"clean", "lossy", "partitioned"} {
				protocol, cell, policy := protocol, cell, policy
				t.Run(fmt.Sprintf("%s/%s/%s", protocol, cell.name, policy), func(t *testing.T) {
					t.Parallel()
					for _, seed := range seeds {
						rep := Run(Config{
							Seed:     seed,
							Procs:    cell.procs,
							Protocol: protocol,
							Policy:   policy,
							Coll:     cell.coll,
							NoAgg:    cell.noAgg,
						})
						if rep.Err != nil {
							t.Fatal(FormatReport(rep))
						}
					}
				})
			}
		}
	}
}

// TestCollLanesOverlap: sharded dispatch races one barrier generation's
// release wave against the next generation's arrivals on different
// lanes; the conformance invariants must hold with the tree topology
// and aggregation both active on top of that.
func TestCollLanesOverlap(t *testing.T) {
	for _, protocol := range []string{"staticupdate", "update"} {
		protocol := protocol
		t.Run(protocol, func(t *testing.T) {
			t.Parallel()
			rep := Run(Config{
				Seed:     1,
				Procs:    5,
				Turns:    60,
				Protocol: protocol,
				Policy:   "lossy",
				Coll:     "tree",
				Lanes:    4,
			})
			if rep.Err != nil {
				t.Fatal(FormatReport(rep))
			}
		})
	}
}

// TestCollUnknownTopologyRejected: a bad -chaos-coll value must fail
// the run with a diagnostic, not fall back silently.
func TestCollUnknownTopologyRejected(t *testing.T) {
	rep := Run(Config{Seed: 1, Protocol: "sc", Coll: "ring"})
	if rep.Err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestCollReplayCarriesFlags: the replay command of a topology-forced
// run must reproduce the topology and aggregation setting.
func TestCollReplayCarriesFlags(t *testing.T) {
	rep := Run(Config{Seed: 3, Protocol: "broken", Coll: "tree", NoAgg: true})
	if rep.Err == nil {
		t.Fatal("broken protocol passed")
	}
	for _, want := range []string{"-chaos-coll tree", "-chaos-noagg", "-chaos-seed 3"} {
		if !strings.Contains(rep.Replay, want) {
			t.Errorf("replay %q missing %q", rep.Replay, want)
		}
	}
}

// TestStarTreeReductionBitIdentical cross-checks the two topologies'
// float reductions bit for bit: both must fold contributions in the
// canonical binomial order, so even the non-associative float sum
// produces identical bits. Runs a seeded vector workload on paired
// clusters, forced star vs forced tree.
func TestStarTreeReductionBitIdentical(t *testing.T) {
	const procs, rounds, width = 8, 6, 5
	results := make(map[string][][]uint64)
	for _, topo := range []struct {
		name string
		t    core.CollTopology
	}{{"star", core.CollStar}, {"tree", core.CollTree}} {
		cl, err := core.NewCluster(core.Options{Procs: procs, Coll: core.CollConfig{Topology: topo.t}})
		if err != nil {
			t.Fatal(err)
		}
		var got [][]uint64
		err = cl.Run(func(p *core.Proc) error {
			for round := 0; round < rounds; round++ {
				// Seed-free but rank/round-dependent values with enough
				// dynamic range that association order matters.
				vec := make([]int64, width)
				for i := range vec {
					f := math.Sqrt(float64(p.ID()+1)) * math.Pow(10, float64((p.ID()+round+i)%7-3))
					vec[i] = int64(math.Float64bits(f))
				}
				// Float sums ride the float code path via AllReduceFloat64;
				// the vector path is integer — check both.
				fsum := p.AllReduceFloat64(core.OpSum, math.Sqrt(float64(p.ID()+1))*math.Pow(10, float64((p.ID()+round)%5-2)))
				isum := p.AllReduceInt64s(core.OpSum, vec)
				if p.ID() == 0 {
					row := []uint64{math.Float64bits(fsum)}
					for _, v := range isum {
						row = append(row, uint64(v))
					}
					got = append(got, row)
				}
				p.GlobalBarrier()
			}
			return nil
		})
		cl.Close()
		if err != nil {
			t.Fatalf("%s: %v", topo.name, err)
		}
		results[topo.name] = got
	}
	for r := range results["star"] {
		for i := range results["star"][r] {
			if results["star"][r][i] != results["tree"][r][i] {
				t.Errorf("round %d slot %d: star %x != tree %x", r, i, results["star"][r][i], results["tree"][r][i])
			}
		}
	}
}
