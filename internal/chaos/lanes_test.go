package chaos

import "testing"

// TestShardedDispatchConformance runs seeded conformance cells with the
// cluster's dispatch sharded across lanes: the coherence invariants
// must hold when handlers from different senders run concurrently,
// both on a clean fabric and under a seeded fault policy.
func TestShardedDispatchConformance(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 7, Procs: 4, Protocol: "update", Policy: "lossy", Lanes: 2},
		{Seed: 7, Procs: 4, Protocol: "sc", Policy: "clean", Lanes: 4},
	} {
		rep := Run(cfg)
		if rep.Err != nil {
			t.Errorf("%s/%s seed %d lanes %d: %v (replay: %s)",
				cfg.Protocol, cfg.Policy, cfg.Seed, cfg.Lanes, rep.Err, rep.Replay)
		}
	}
}

// TestBrokenCaughtUnderShardedDispatch checks the harness keeps its
// teeth with lanes on: the deliberately broken protocol must still be
// detected when dispatch is sharded.
func TestBrokenCaughtUnderShardedDispatch(t *testing.T) {
	rep := Run(Config{Seed: 1, Procs: 4, Protocol: "broken", Policy: "clean", Lanes: 2})
	if rep.Err == nil {
		t.Fatal("broken protocol passed conformance under sharded dispatch")
	}
}
