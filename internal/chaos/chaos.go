// Package chaos is a seeded protocol-conformance stress harness: it
// runs every library protocol through randomized region workloads on a
// fault-injecting transport (internal/faultnet) and checks the
// coherence invariants the runtime promises a correctly synchronized
// program — read-your-writes after EndWrite+Barrier (against a
// sequential model), mutual exclusion for lock-protected counters, and
// flush-to-base across ChangeProtocol. Every run is identified by
// (protocol, policy, seed); a failing report carries a replay command
// that reproduces the same failure deterministically.
//
// The "null" protocol is deliberately not covered: it performs no
// coherence actions by contract and is only correct for unshared or
// pre-propagated data, which is exactly what the harness's sharing
// workload is designed to violate. (The harness's own "broken" test
// double — registered alongside the library — behaves the same way and
// exists to prove the harness catches incoherence.)
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/faultnet"
	"github.com/acedsm/ace/internal/trace"
	"github.com/acedsm/ace/proto"
)

// Config selects one stress run. Zero fields default: 4 processors, 5
// regions, 40 turns, the "clean" policy.
type Config struct {
	Seed     int64
	Procs    int
	Regions  int
	Turns    int
	Protocol string // required: a library protocol, or "broken"
	Policy   string // named fault policy; see Policies
	// Lanes shards each processor's dispatch across the given number of
	// pump lanes (core.Options.DispatchLanes). Zero keeps the classic
	// single pump; the conformance invariants must hold either way.
	Lanes int
	// Coll forces the collective topology: "star", "tree", or ""/"auto"
	// for the size-based default (core.Options.Coll.Topology). The
	// conformance invariants must hold on every topology.
	Coll string
	// NoAgg disables per-destination protocol push aggregation, pinning
	// the update-family protocols to their per-region reference wire
	// path (core.CollConfig.NoAggregation).
	NoAgg bool
}

// Report is the outcome of one run. Err is nil on success; on failure
// Replay holds a command that reproduces the run.
type Report struct {
	Protocol string
	Policy   string
	Seed     int64
	Err      error
	Faults   trace.FaultCounts
	Replay   string
}

// Protocols returns the library protocols the harness covers: every
// registered protocol except "null" (see the package comment), plus the
// pseudo-protocol "adaptive" — a cluster started on "sc" with the online
// protocol controller enabled, so the conformance invariants are checked
// while the controller switches protocols mid-run.
func Protocols() []string {
	return []string{
		"sc", "migratory", "update", "atomic", "writethrough",
		"homewrite", "staticupdate", "pipeline", "racecheck", "adaptive",
	}
}

// Policies returns the named fault policies, mildest first.
func Policies() []string {
	return []string{"clean", "jittery", "lossy", "partitioned", "slow"}
}

// PolicyByName builds the named fault policy for the given seed. The
// "clean" policy is nil: no fault layer at all.
func PolicyByName(name string, seed int64) (*faultnet.Policy, error) {
	switch name {
	case "clean":
		return nil, nil
	case "jittery":
		return &faultnet.Policy{
			Seed:   seed,
			Delay:  100 * time.Microsecond,
			Jitter: 400 * time.Microsecond,
		}, nil
	case "lossy":
		return &faultnet.Policy{
			Seed:        seed,
			Delay:       50 * time.Microsecond,
			DupProb:     0.15,
			DropProb:    0.15,
			ReorderProb: 0.15,
		}, nil
	case "partitioned":
		// Two successive bidirectional windows on the 0↔1 pair (the
		// pair in a Partition is unordered).
		return &faultnet.Policy{
			Seed: seed,
			Partitions: []faultnet.Partition{
				{A: 0, B: 1, After: 2 * time.Millisecond, For: 3 * time.Millisecond},
				{A: 0, B: 1, After: 9 * time.Millisecond, For: 3 * time.Millisecond},
			},
		}, nil
	case "slow":
		return &faultnet.Policy{
			Seed:      seed,
			SlowNode:  1,
			SlowDelay: 200 * time.Microsecond,
		}, nil
	}
	return nil, fmt.Errorf("chaos: unknown policy %q (have %v)", name, Policies())
}

// BrokenInfo is the harness's deliberately broken protocol: it takes no
// coherence actions at all while claiming to manage shared data, so the
// conformance workload must catch it on the first read of remotely
// written data — at the same schedule position for a given seed,
// whatever the fault policy does to timing.
func BrokenInfo() core.Info {
	return core.Info{
		Name: "broken",
		New:  func() core.Protocol { return &brokenProto{} },
	}
}

type brokenProto struct{ core.Base }

func (*brokenProto) Name() string { return "broken" }

// Run executes one stress run and reports the outcome.
func Run(cfg Config) Report {
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 5
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 40
	}
	if cfg.Policy == "" {
		cfg.Policy = "clean"
	}
	replay := fmt.Sprintf("go run ./cmd/acebench -exp chaos -procs %d -chaos-proto %s -chaos-policy %s -chaos-seed %d",
		cfg.Procs, cfg.Protocol, cfg.Policy, cfg.Seed)
	if cfg.Coll != "" {
		replay += " -chaos-coll " + cfg.Coll
	}
	if cfg.NoAgg {
		replay += " -chaos-noagg"
	}
	rep := Report{
		Protocol: cfg.Protocol,
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
		Replay:   replay,
	}
	pol, err := PolicyByName(cfg.Policy, cfg.Seed)
	if err != nil {
		rep.Err = err
		return rep
	}
	coll := core.CollConfig{NoAggregation: cfg.NoAgg}
	switch cfg.Coll {
	case "", "auto":
		coll.Topology = core.CollAuto
	case "star":
		coll.Topology = core.CollStar
	case "tree":
		coll.Topology = core.CollTree
	default:
		rep.Err = fmt.Errorf("chaos: unknown collective topology %q (have auto, star, tree)", cfg.Coll)
		return rep
	}
	reg := proto.NewRegistry()
	reg.MustRegister(BrokenInfo())
	defaultProto := cfg.Protocol
	var adapt *core.AdaptConfig
	if cfg.Protocol == "adaptive" {
		// The adaptive row starts on "sc" and lets the controller switch
		// protocols while the conformance schedule runs. Aggressive
		// tuning so switches land inside the fault windows (the
		// partitioned policy's windows open a few milliseconds in).
		defaultProto = "sc"
		adapt = &core.AdaptConfig{EpochBarriers: 2, Hysteresis: 2, Cooldown: 1, MinOps: 1}
	}
	if _, ok := reg.Lookup(defaultProto); !ok {
		rep.Err = fmt.Errorf("chaos: unknown protocol %q", cfg.Protocol)
		return rep
	}
	cl, err := core.NewCluster(core.Options{
		Procs:           cfg.Procs,
		Registry:        reg,
		DefaultProtocol: defaultProto,
		DispatchLanes:   cfg.Lanes,
		Coll:            coll,
		Faults:          pol,
		Adapt:           adapt,
		// A harness bug (or a protocol hang under faults) must fail
		// typed, not wedge the suite.
		SyncTimeout: 2 * time.Minute,
	})
	if err != nil {
		rep.Err = err
		return rep
	}
	defer cl.Close()
	rep.Err = cl.Run(worker(cfg))
	m := cl.Metrics()
	rep.Faults = m.Net.Faults
	if cfg.Protocol == "adaptive" && rep.Err == nil {
		// The row only proves something if the controller actually
		// switched protocols under the workload's pattern churn.
		var switches uint64
		for _, a := range m.Adapt {
			switches += a.Switches
		}
		if switches < 2 {
			rep.Err = fmt.Errorf("chaos adaptive/%s seed %d: controller made %d switches, want at least 2 (pattern churn did not exercise adaptation)",
				cfg.Policy, cfg.Seed, switches)
		}
	}
	return rep
}

// schedOp is one operation of the turn-based schedule; ops are
// separated by barriers, so a correct protocol must make every read
// observe the sequential model.
type schedOp struct {
	proc   int
	write  bool
	region int
	value  int64
}

// genSchedule derives the run's schedule from the seed alone, so a
// replay executes the identical operation sequence.
func genSchedule(rng *rand.Rand, procs, nRegions, nTurns int) []schedOp {
	var ops []schedOp
	val := int64(1)
	for t := 0; t < nTurns; t++ {
		op := schedOp{proc: rng.Intn(procs), region: rng.Intn(nRegions)}
		if rng.Intn(2) == 0 {
			op.write, op.value = true, val
			val++
		}
		ops = append(ops, op)
	}
	return ops
}

// homeRestricted reports protocols whose contract only lets a region's
// home processor write it. The adaptive row is restricted too: the
// controller may install staticupdate or homewrite at any epoch, so the
// whole schedule must stay legal under them.
func homeRestricted(protocol string) bool {
	return protocol == "homewrite" || protocol == "staticupdate" || protocol == "adaptive"
}

// worker builds the SPMD body for the configured protocol: the additive
// workload for pipeline, the controller-churn workload for the adaptive
// row, the model-checked schedule for everyone else.
func worker(cfg Config) func(p *core.Proc) error {
	switch cfg.Protocol {
	case "pipeline":
		return additiveWorker(cfg)
	case "adaptive":
		return adaptiveWorker(cfg)
	}
	return scheduleWorker(cfg)
}

// setupRegions allocates n regions homed round-robin, broadcasts their
// ids, maps them everywhere and registers every processor as a sharer
// (so push-based protocols know the full sharer set), finishing at a
// barrier.
func setupRegions(p *core.Proc, sp *core.Space, n int) []*core.Region {
	procs := p.Procs()
	ids := make([]core.RegionID, n)
	var mine []core.RegionID
	for r := 0; r < n; r++ {
		if r%procs == p.ID() {
			mine = append(mine, p.GMalloc(sp, 8))
		}
	}
	for root := 0; root < procs; root++ {
		cnt := 0
		for r := 0; r < n; r++ {
			if r%procs == root {
				cnt++
			}
		}
		var got []core.RegionID
		if root == p.ID() {
			got = p.BroadcastIDs(root, mine)
		} else {
			got = p.BroadcastIDs(root, make([]core.RegionID, cnt))
		}
		i := 0
		for r := 0; r < n; r++ {
			if r%procs == root {
				ids[r] = got[i]
				i++
			}
		}
	}
	hs := make([]*core.Region, n)
	for r, id := range ids {
		hs[r] = p.Map(id)
		p.StartRead(hs[r])
		p.EndRead(hs[r])
	}
	p.Barrier(sp)
	return hs
}

// scheduleWorker checks the protocol against the sequential model, then
// a lock-protected counter (mutual exclusion), then flush-to-base
// across ChangeProtocol — the full invariant set for one protocol.
func scheduleWorker(cfg Config) func(p *core.Proc) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := genSchedule(rng, cfg.Procs, cfg.Regions, cfg.Turns)
	if homeRestricted(cfg.Protocol) {
		for i := range ops {
			if ops[i].write {
				ops[i].proc = ops[i].region % cfg.Procs
			}
		}
	}
	// The lock phase (read-modify-write under mutual exclusion, no
	// barriers) is only an advertised idiom for protocols whose
	// coherence points cover lock transfer: sc (invalidation completes
	// inside the write section), migratory (data moves with ownership)
	// and atomic (home-serialized RMW). writethrough and the update
	// family are phase-structured by contract — stores are split-phase
	// and cached copies self-invalidate at *barriers*, so lock handoff
	// between barriers guarantees nothing; the home-restricted
	// protocols forbid remote writers outright; racecheck would
	// correctly flag the phase as unsynchronized writes.
	lockPhase := map[string]bool{"sc": true, "migratory": true, "atomic": true}[cfg.Protocol]
	return func(p *core.Proc) error {
		sp := p.DefaultSpace()
		// Region cfg.Regions (one past the schedule's) is the lock
		// counter, homed at proc 0.
		hs := setupRegions(p, sp, cfg.Regions+1)
		model := make([]int64, cfg.Regions)

		// A divergence must not strand the other processors at the next
		// barrier: record the first violation, keep executing the
		// collective schedule to completion, and fail at the end. This
		// also keeps the broken test double's failure deterministic —
		// every processor reports its own first divergence.
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}

		// Phase 1: model-checked schedule (read-your-writes across
		// EndWrite+Barrier).
		for i, op := range ops {
			if op.proc == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else {
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					if want := model[op.region]; got != want {
						fail(fmt.Errorf("chaos %s/%s seed %d: op %d: proc %d read region %d = %d, model says %d",
							cfg.Protocol, cfg.Policy, cfg.Seed, i, p.ID(), op.region, got, want))
					}
				}
			}
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}

		// Phase 2: lock-protected counter (single writer at a time, so
		// no increment may be lost).
		const incs = 6
		counter := hs[cfg.Regions]
		if lockPhase {
			for k := 0; k < incs; k++ {
				p.Lock(counter)
				p.StartWrite(counter)
				counter.Data.SetInt64(0, counter.Data.Int64(0)+1)
				p.EndWrite(counter)
				p.Unlock(counter)
			}
			p.Barrier(sp)
			p.StartRead(counter)
			got := counter.Data.Int64(0)
			p.EndRead(counter)
			if want := int64(cfg.Procs * incs); got != want {
				fail(fmt.Errorf("chaos %s/%s seed %d: lock counter = %d, want %d (lost increments)",
					cfg.Protocol, cfg.Policy, cfg.Seed, got, want))
			}
			p.Barrier(sp)
		}
		if cfg.Protocol == "racecheck" {
			if v := p.AllReduceInt64(core.OpSum, proto.RaceViolations(sp)); v != 0 {
				fail(fmt.Errorf("chaos racecheck/%s seed %d: %d violations on a properly phased schedule",
					cfg.Policy, cfg.Seed, v))
			}
		}

		// Phase 3: ChangeProtocol must flush to base — the data written
		// under cfg.Protocol is read back under another protocol, and
		// again after switching back.
		other := "sc"
		if cfg.Protocol == "sc" {
			other = "update"
		}
		check := func(stage string) {
			for r := 0; r < cfg.Regions; r++ {
				p.StartRead(hs[r])
				got := hs[r].Data.Int64(0)
				p.EndRead(hs[r])
				if want := model[r]; got != want {
					fail(fmt.Errorf("chaos %s/%s seed %d: %s: region %d = %d, model says %d",
						cfg.Protocol, cfg.Policy, cfg.Seed, stage, r, got, want))
				}
			}
		}
		if err := p.ChangeProtocol(sp, other); err != nil {
			return err // collective misuse, not a coherence divergence
		}
		check("after ChangeProtocol to " + other)
		p.Barrier(sp)
		if err := p.ChangeProtocol(sp, cfg.Protocol); err != nil {
			return err
		}
		// One more write round under the restored protocol: the home of
		// each region (a writer every protocol permits) bumps it.
		for r := 0; r < cfg.Regions; r++ {
			if r%cfg.Procs == p.ID() {
				p.StartWrite(hs[r])
				hs[r].Data.SetInt64(0, model[r]+100)
				p.EndWrite(hs[r])
			}
			model[r] += 100
		}
		p.Barrier(sp)
		check("after ChangeProtocol back to " + cfg.Protocol)
		p.Barrier(sp)
		return firstErr
	}
}

// adaptiveWorker drives the adaptive row: the cluster starts on sc with
// the online controller enabled (see Run), and the workload checks the
// sequential model while deliberately churning the access pattern so the
// controller switches protocols mid-run — first the seeded schedule
// (too sparse per epoch to trigger a switch: it validates the controller
// stays put without signal), then a read-dominated home-writer phase
// (classifies producer-consumer → staticupdate), then a lock-mediated
// phase (classifies migratory), and finally a manual ChangeProtocol on
// top of whatever the controller installed. Writes are home-only
// throughout, keeping every reachable target protocol legal; reads are
// checked only after barriers, which every adaptive protocol's contract
// covers. Run asserts afterwards that at least two switches happened.
func adaptiveWorker(cfg Config) func(p *core.Proc) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := genSchedule(rng, cfg.Procs, cfg.Regions, cfg.Turns)
	for i := range ops {
		if ops[i].write {
			ops[i].proc = ops[i].region % cfg.Procs
		}
	}
	return func(p *core.Proc) error {
		sp := p.DefaultSpace()
		// Region cfg.Regions is lock bait for the migratory phase; it is
		// never written, so it needs no model entry.
		hs := setupRegions(p, sp, cfg.Regions+1)
		model := make([]int64, cfg.Regions)
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		checkAll := func(stage string) {
			for r := 0; r < cfg.Regions; r++ {
				p.StartRead(hs[r])
				got := hs[r].Data.Int64(0)
				p.EndRead(hs[r])
				if want := model[r]; got != want {
					fail(fmt.Errorf("chaos adaptive/%s seed %d: %s: region %d = %d, model says %d",
						cfg.Policy, cfg.Seed, stage, r, got, want))
				}
			}
		}

		// Phase 1: the seeded schedule under sc. One op per epoch-half is
		// below every classification threshold (no epoch can see a writer
		// plus two readers), so the controller must not switch here.
		for i, op := range ops {
			if op.proc == p.ID() {
				h := hs[op.region]
				if op.write {
					p.StartWrite(h)
					h.Data.SetInt64(0, op.value)
					p.EndWrite(h)
				} else {
					p.StartRead(h)
					got := h.Data.Int64(0)
					p.EndRead(h)
					if want := model[op.region]; got != want {
						fail(fmt.Errorf("chaos adaptive/%s seed %d: op %d: proc %d read region %d = %d, model says %d",
							cfg.Policy, cfg.Seed, i, p.ID(), op.region, got, want))
					}
				}
			}
			if op.write {
				model[op.region] = op.value
			}
			p.Barrier(sp)
		}

		const churnIters = 8
		// Phase 2: producer-consumer churn. Every home rewrites its
		// regions, everyone reads them all back — read-dominated,
		// home-only, with remote read misses under sc: the controller
		// must converge on staticupdate within the phase, and the model
		// must keep holding across the switch.
		for e := 0; e < churnIters; e++ {
			for r := 0; r < cfg.Regions; r++ {
				v := int64(10_000 + 100*e + r)
				if r%cfg.Procs == p.ID() {
					p.StartWrite(hs[r])
					hs[r].Data.SetInt64(0, v)
					p.EndWrite(hs[r])
				}
				model[r] = v
			}
			p.Barrier(sp)
			checkAll(fmt.Sprintf("producer-consumer churn %d", e))
			p.Barrier(sp)
		}

		// Phase 3: migratory churn. The same home-only writes, now inside
		// a lock section on the bait region — lock traffic plus writes
		// classifies migratory, switching away from the push protocol.
		bait := hs[cfg.Regions]
		for e := 0; e < churnIters; e++ {
			p.Lock(bait)
			for r := 0; r < cfg.Regions; r++ {
				v := int64(20_000 + 100*e + r)
				if r%cfg.Procs == p.ID() {
					p.StartWrite(hs[r])
					hs[r].Data.SetInt64(0, v)
					p.EndWrite(hs[r])
				}
				model[r] = v
			}
			p.Unlock(bait)
			p.Barrier(sp)
			checkAll(fmt.Sprintf("migratory churn %d", e))
			p.Barrier(sp)
		}

		// Phase 4: a manual ChangeProtocol on top of the controller —
		// applications and the controller share the same collective, so
		// an explicit switch must flush and proceed from wherever
		// adaptation landed.
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err // collective misuse, not a coherence divergence
		}
		checkAll("after manual ChangeProtocol to sc")
		p.Barrier(sp)
		for r := 0; r < cfg.Regions; r++ {
			if r%cfg.Procs == p.ID() {
				p.StartWrite(hs[r])
				hs[r].Data.SetInt64(0, model[r]+100)
				p.EndWrite(hs[r])
			}
			model[r] += 100
		}
		p.Barrier(sp)
		checkAll("after home-writer round under sc")
		p.Barrier(sp)
		return firstErr
	}
}

// additiveWorker drives the pipeline protocol with its contract:
// write sections contribute addends, barriers publish the sums.
func additiveWorker(cfg Config) func(p *core.Proc) error {
	return func(p *core.Proc) error {
		sp := p.DefaultSpace()
		hs := setupRegions(p, sp, cfg.Regions)
		model := make([]float64, cfg.Regions)
		perTurn := float64(cfg.Procs * (cfg.Procs + 1) / 2)
		// As in scheduleWorker: record the first divergence and keep
		// participating in the collectives so peers aren't stranded.
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		turn := func(i int) {
			h := hs[i%cfg.Regions]
			p.StartWrite(h)
			h.Data.SetFloat64(0, h.Data.Float64(0)+float64(p.ID()+1))
			p.EndWrite(h)
			p.Barrier(sp)
			model[i%cfg.Regions] += perTurn
			p.StartRead(h)
			got := h.Data.Float64(0)
			p.EndRead(h)
			if want := model[i%cfg.Regions]; got != want {
				fail(fmt.Errorf("chaos pipeline/%s seed %d: turn %d: region %d = %v, model says %v (lost or doubled addends)",
					cfg.Policy, cfg.Seed, i, i%cfg.Regions, got, want))
			}
			p.Barrier(sp)
		}
		for i := 0; i < cfg.Turns; i++ {
			turn(i)
		}
		// Flush-to-base: the accumulated sums must survive a switch to
		// sc and the switch back, after which accumulation continues.
		checkAll := func(stage string) {
			for r := 0; r < cfg.Regions; r++ {
				p.StartRead(hs[r])
				got := hs[r].Data.Float64(0)
				p.EndRead(hs[r])
				if want := model[r]; got != want {
					fail(fmt.Errorf("chaos pipeline/%s seed %d: %s: region %d = %v, model says %v",
						cfg.Policy, cfg.Seed, stage, r, got, want))
				}
			}
		}
		if err := p.ChangeProtocol(sp, "sc"); err != nil {
			return err // collective misuse, not a coherence divergence
		}
		checkAll("after ChangeProtocol to sc")
		p.Barrier(sp)
		if err := p.ChangeProtocol(sp, "pipeline"); err != nil {
			return err
		}
		turn(0)
		return firstErr
	}
}

// RunMatrix runs the whole protocol × policy grid for each seed and
// returns the failing reports (nil means everything held).
func RunMatrix(seeds []int64, procs int) []Report {
	var failed []Report
	for _, protocol := range Protocols() {
		for _, policy := range Policies() {
			for _, seed := range seeds {
				rep := Run(Config{Seed: seed, Procs: procs, Protocol: protocol, Policy: policy})
				if rep.Err != nil {
					failed = append(failed, rep)
				}
			}
		}
	}
	return failed
}

// FormatReport renders a failing report with its replay line.
func FormatReport(rep Report) string {
	if rep.Err == nil {
		return fmt.Sprintf("chaos %s/%s seed %d: ok (%d faults injected)",
			rep.Protocol, rep.Policy, rep.Seed, rep.Faults.Total())
	}
	return fmt.Sprintf("chaos %s/%s seed %d: FAIL\n  %v\n  replay: %s",
		rep.Protocol, rep.Policy, rep.Seed, rep.Err, rep.Replay)
}

// Errs joins the errors of the given reports.
func Errs(reps []Report) error {
	var errs []error
	for _, r := range reps {
		errs = append(errs, r.Err)
	}
	return errors.Join(errs...)
}
