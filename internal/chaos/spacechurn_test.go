package chaos

import "testing"

// TestSpaceChurnFixedSeeds runs the space-churn lifecycle cell — waves
// of collective NewSpace / home-write / FreeSpace with bounded-table,
// stale-ref and generation checks in the worker — for a representative
// protocol pair under every fault policy, at the pinned seeds.
func TestSpaceChurnFixedSeeds(t *testing.T) {
	seeds := fixedSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, protocol := range []string{"sc", "update"} {
		for _, policy := range Policies() {
			protocol, policy := protocol, policy
			t.Run(protocol+"/"+policy, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					rep := RunSpaceChurn(Config{Seed: seed, Protocol: protocol, Policy: policy})
					if rep.Err != nil {
						t.Fatal(FormatReport(rep))
					}
					perMessage := policy == "jittery" || policy == "lossy" || policy == "slow"
					if perMessage && rep.Faults.Total() == 0 {
						t.Fatalf("seed %d: policy %q injected no faults", seed, policy)
					}
				}
			})
		}
	}
}

// TestSpaceChurnRejectsUnknownNames: bad names fail typed, as in Run.
func TestSpaceChurnRejectsUnknownNames(t *testing.T) {
	if rep := RunSpaceChurn(Config{Seed: 1, Protocol: "nosuch"}); rep.Err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if rep := RunSpaceChurn(Config{Seed: 1, Policy: "nosuch"}); rep.Err == nil {
		t.Fatal("unknown policy accepted")
	}
}
