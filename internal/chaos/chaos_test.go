package chaos

import (
	"strings"
	"testing"
)

// fixedSeeds are the seeds the acceptance gate pins: the full
// protocol × policy matrix must hold for every one of them.
var fixedSeeds = []int64{1, 2, 3}

// TestMatrixFixedSeeds runs every library protocol under every fault
// policy for the fixed seeds. Any failure prints its replay command.
func TestMatrixFixedSeeds(t *testing.T) {
	seeds := fixedSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, protocol := range Protocols() {
		for _, policy := range Policies() {
			protocol, policy := protocol, policy
			t.Run(protocol+"/"+policy, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					rep := Run(Config{Seed: seed, Protocol: protocol, Policy: policy})
					if rep.Err != nil {
						t.Fatal(FormatReport(rep))
					}
					// Per-message policies must visibly inject; the
					// partition policy is time-windowed and a fast run
					// may legitimately slip through its windows.
					perMessage := policy == "jittery" || policy == "lossy" || policy == "slow"
					if perMessage && rep.Faults.Total() == 0 {
						t.Fatalf("seed %d: policy %q injected no faults", seed, policy)
					}
					if policy == "clean" && rep.Faults.Total() != 0 {
						t.Fatalf("seed %d: clean policy injected %d faults", seed, rep.Faults.Total())
					}
				}
			})
		}
	}
}

// TestBrokenDoubleCaughtDeterministically pins the harness's teeth and
// its replay guarantee: the deliberately broken protocol must fail, and
// two runs with the same seed must produce the identical error — the
// property that makes the printed replay command trustworthy.
func TestBrokenDoubleCaughtDeterministically(t *testing.T) {
	first := Run(Config{Seed: 1, Protocol: "broken"})
	if first.Err == nil {
		t.Fatal("broken protocol passed the conformance harness")
	}
	if !strings.Contains(first.Replay, "-chaos-proto broken") ||
		!strings.Contains(first.Replay, "-chaos-seed 1") {
		t.Fatalf("replay command does not identify the run: %q", first.Replay)
	}
	second := Run(Config{Seed: 1, Protocol: "broken"})
	if second.Err == nil {
		t.Fatal("broken protocol passed on replay")
	}
	if first.Err.Error() != second.Err.Error() {
		t.Fatalf("replay diverged:\n  first:  %v\n  second: %v", first.Err, second.Err)
	}
	// A different seed exercises a different schedule and so (in
	// general) trips at a different position — the seed is load-bearing.
	other := Run(Config{Seed: 2, Protocol: "broken"})
	if other.Err == nil {
		t.Fatal("broken protocol passed under seed 2")
	}
}

// TestBrokenDoubleCaughtUnderFaults: fault timing must not let the
// broken protocol slip through, and the failure stays deterministic
// because divergence is checked against a seed-derived model, not
// against timing.
func TestBrokenDoubleCaughtUnderFaults(t *testing.T) {
	for _, policy := range []string{"jittery", "lossy"} {
		rep := Run(Config{Seed: 1, Protocol: "broken", Policy: policy})
		if rep.Err == nil {
			t.Fatalf("broken protocol passed under %s faults", policy)
		}
	}
}

// TestUnknownNamesRejected: bad protocol or policy names are reported
// as errors, not panics or silent passes.
func TestUnknownNamesRejected(t *testing.T) {
	if rep := Run(Config{Seed: 1, Protocol: "nosuch"}); rep.Err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if rep := Run(Config{Seed: 1, Protocol: "sc", Policy: "nosuch"}); rep.Err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := PolicyByName("nosuch", 1); err == nil {
		t.Fatal("PolicyByName accepted an unknown name")
	}
}

// TestPolicyCatalogCoherent: every named policy builds, and "clean"
// alone is the nil (no-fault-layer) policy.
func TestPolicyCatalogCoherent(t *testing.T) {
	for _, name := range Policies() {
		pol, err := PolicyByName(name, 7)
		if err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
		if (pol == nil) != (name == "clean") {
			t.Fatalf("policy %q: nil-ness = %v", name, pol == nil)
		}
	}
}
