package ir

import (
	"strings"
	"testing"

	"github.com/acedsm/ace/internal/memory"
)

func TestValueConstructors(t *testing.T) {
	if v := Int(42); v.K != KInt || v.I != 42 {
		t.Errorf("Int: %+v", v)
	}
	if v := Float(2.5); v.K != KFloat || v.F != 2.5 {
		t.Errorf("Float: %+v", v)
	}
	id := memory.MakeID(3, 9)
	if v := Region(id); v.K != KRegion || v.R != id {
		t.Errorf("Region: %+v", v)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(7), "7"},
		{Float(1.5), "1.5"},
		{Region(memory.MakeID(1, 2)), "region<1:2>"},
		{Value{K: KHandle}, "handle"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestOperandString(t *testing.T) {
	if got := CI(5).String(); got != "5" {
		t.Errorf("const operand: %q", got)
	}
	if got := L(3).String(); got != "l3" {
		t.Errorf("local operand: %q", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KInt: "int", KFloat: "float", KRegion: "region", KHandle: "handle"} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
}

func TestBuilderStructure(t *testing.T) {
	b := NewBuilder("f", Type{Kind: KInt}, Type{Kind: KRegion, Spaces: []int{0}})
	sum := b.Const(Float(0))
	i := b.Local(KInt)
	b.Loop(i, CI(0), L(0), func() {
		v := b.SharedLoad(KFloat, L(1), L(i))
		b.BinTo(sum, Add, L(sum), L(v))
	})
	b.If(L(0), func() {
		b.Barrier(0)
	}, func() {
		b.MoveTo(sum, CF(0))
	})
	b.Ret(L(sum))
	f := b.Func()

	if len(f.Params) != 2 || f.NumLocals < 4 {
		t.Fatalf("params=%d locals=%d", len(f.Params), f.NumLocals)
	}
	if len(f.Body) != 4 { // const, loop, if, ret
		t.Fatalf("body has %d statements", len(f.Body))
	}
	if f.Body[1].Op != OpLoop || len(f.Body[1].Body) != 2 {
		t.Fatalf("loop shape wrong: %+v", f.Body[1])
	}
	if f.Body[2].Op != OpIf || len(f.Body[2].Body) != 1 || len(f.Body[2].Else) != 1 {
		t.Fatalf("if shape wrong: %+v", f.Body[2])
	}
	text := f.String()
	for _, want := range []string{"func f", "for l", "if l0", "barrier(space 0)", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestBuilderUnclosedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("f")
	b.stack = append(b.stack, nil) // simulate unclosed control structure
	b.Func()
}

func TestProgramClone(t *testing.T) {
	b := NewBuilder("f", Type{Kind: KRegion, Spaces: []int{0}})
	i := b.Local(KInt)
	b.Loop(i, CI(0), CI(3), func() {
		v := b.SharedLoad(KFloat, L(0), L(i))
		_ = v
	})
	b.Ret(CF(0))
	p := &Program{Funcs: map[string]*Func{"f": b.Func()}, SpaceProtos: map[int][]string{0: {"sc"}}}
	c := p.Clone()

	// Mutating the clone must not affect the original.
	c.Funcs["f"].Body[0].Body[0].Op = OpBarrier
	c.SpaceProtos[0][0] = "changed"
	if p.Funcs["f"].Body[0].Body[0].Op == OpBarrier {
		t.Error("clone shares nested instruction storage")
	}
	if p.SpaceProtos[0][0] != "sc" {
		t.Error("clone shares space-proto storage")
	}
}

func TestGMallocBcastChangeRender(t *testing.T) {
	b := NewBuilder("f")
	r := b.GMalloc(1, CI(64))
	b.BcastID(Type{Kind: KRegion, Spaces: []int{1}}, CI(0), L(r))
	b.ChangeProto(1, "update")
	b.Ret(CI(0))
	f := b.Func()
	text := f.String()
	for _, want := range []string{"gmalloc(space 1, 64)", "bcastid(root 0", `changeprotocol(space 1, "update")`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if f.LocalTypes[r].Spaces[0] != 1 {
		t.Errorf("gmalloc local not typed with its space")
	}
}

func TestFuncStringsSorted(t *testing.T) {
	mk := func(name string) *Func {
		b := NewBuilder(name)
		b.Ret(CI(0))
		return b.Func()
	}
	p := &Program{Funcs: map[string]*Func{"zeta": mk("zeta"), "alpha": mk("alpha")}}
	out := p.FuncStrings()
	if len(out) != 2 || !strings.Contains(out[0], "alpha") || !strings.Contains(out[1], "zeta") {
		t.Errorf("FuncStrings not sorted: %v", out)
	}
}
