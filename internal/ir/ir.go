// Package ir defines the intermediate representation the Ace compiler
// operates on: a small, structured, typed IR in which accesses to shared
// regions are explicit instructions. The front end (package lang) or the
// kernel builders emit SharedLoad/SharedStore instructions; the compiler's
// annotation pass lowers them to runtime calls (Map, StartRead, ...)
// exactly as Figure 5 of the paper describes, and the optimization passes
// then hoist, merge and devirtualize those calls.
package ir

import (
	"fmt"

	"github.com/acedsm/ace/internal/memory"
)

// Kind is a value kind.
type Kind uint8

// The value kinds. KRegion values are shared-region ids (the IR's
// representation of pointers to shared data); KHandle values are mapped
// region handles, produced only by the annotation pass.
const (
	KInt Kind = iota
	KFloat
	KRegion
	KHandle
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KRegion:
		return "region"
	case KHandle:
		return "handle"
	}
	return "?"
}

// Value is a constant or runtime value.
type Value struct {
	K Kind
	I int64
	F float64
	R memory.RegionID
}

// Int builds an integer value.
func Int(v int64) Value { return Value{K: KInt, I: v} }

// Float builds a float value.
func Float(v float64) Value { return Value{K: KFloat, F: v} }

// Region builds a region-id value.
func Region(id memory.RegionID) Value { return Value{K: KRegion, R: id} }

func (v Value) String() string {
	switch v.K {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KRegion:
		return v.R.String()
	default:
		return "handle"
	}
}

// Operand is either a constant or a local slot reference.
type Operand struct {
	IsConst bool
	Const   Value
	Local   int
}

// C builds a constant operand.
func C(v Value) Operand { return Operand{IsConst: true, Const: v} }

// CI builds a constant integer operand.
func CI(v int64) Operand { return C(Int(v)) }

// CF builds a constant float operand.
func CF(v float64) Operand { return C(Float(v)) }

// L builds a local operand.
func L(slot int) Operand { return Operand{Local: slot} }

func (o Operand) String() string {
	if o.IsConst {
		return o.Const.String()
	}
	return fmt.Sprintf("l%d", o.Local)
}

// Op enumerates instruction opcodes.
type Op uint8

// The instruction opcodes.
const (
	OpConst Op = iota // Dst = ConstVal
	OpMove            // Dst = A
	OpBin             // Dst = A <Bin> B
	OpUn              // Dst = <Un> A

	OpSharedLoad  // Dst = shared[A=base region][B=index], kind ElemKind (pre-annotation)
	OpSharedStore // shared[A=base region][B=index] = Src, kind ElemKind (pre-annotation)

	OpMap        // Dst = ACE_MAP(A=base region)
	OpUnmap      // ACE_UNMAP(A=handle)
	OpStartRead  // ACE_START_READ(A=handle)
	OpEndRead    // ACE_END_READ(A=handle)
	OpStartWrite // ACE_START_WRITE(A=handle)
	OpEndWrite   // ACE_END_WRITE(A=handle)
	OpLoad       // Dst = handle[A=handle][B=index], kind ElemKind (post-annotation)
	OpStore      // handle[A=handle][B=index] = Src, kind ElemKind (post-annotation)

	OpBarrier // barrier on space A (int operand: space id)
	OpLoop    // for Dst = A; Dst < B; Dst++ { Body }
	OpIf      // if A != 0 { Body } else { Else }
	OpCall    // Dst = Callee(Args...)
	OpRet     // return A

	OpGMalloc     // Dst = gmalloc(space A, size B)
	OpBcastID     // Dst = broadcast region id Src from root A (collective)
	OpChangeProto // change space A's protocol to Callee (collective)
	OpLock        // acquire the region lock of A (a region id)
	OpUnlock      // release the region lock of A
)

var opNames = map[Op]string{
	OpConst: "const", OpMove: "move", OpBin: "bin", OpUn: "un",
	OpSharedLoad: "sload", OpSharedStore: "sstore",
	OpMap: "ACE_MAP", OpUnmap: "ACE_UNMAP",
	OpStartRead: "ACE_START_READ", OpEndRead: "ACE_END_READ",
	OpStartWrite: "ACE_START_WRITE", OpEndWrite: "ACE_END_WRITE",
	OpLoad: "load", OpStore: "store",
	OpBarrier: "barrier", OpLoop: "loop", OpIf: "if", OpCall: "call", OpRet: "ret",
	OpGMalloc: "gmalloc", OpBcastID: "bcastid", OpChangeProto: "changeproto",
	OpLock: "lock", OpUnlock: "unlock",
}

// BinOp enumerates binary operators.
type BinOp uint8

// The binary operators. Comparison operators yield KInt 0/1.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Lt
	Le
	Eq
	Ne
	And
	Or
)

var binNames = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	Lt: "<", Le: "<=", Eq: "==", Ne: "!=", And: "&&", Or: "||",
}

// UnOp enumerates unary operators.
type UnOp uint8

// The unary operators.
const (
	Neg UnOp = iota
	Sqrt
	IntToFloat
	Not
)

var unNames = map[UnOp]string{Neg: "neg", Sqrt: "sqrt", IntToFloat: "i2f", Not: "not"}

// Instr is one IR instruction. Structured control flow (OpLoop, OpIf)
// carries nested bodies.
type Instr struct {
	Op  Op
	Dst int // destination local, -1 if none

	A, B, Src Operand
	ConstVal  Value
	Bin       BinOp
	Un        UnOp
	ElemKind  Kind // element kind for load/store

	// Body and Else are the nested statement lists of OpLoop / OpIf.
	Body []Instr
	Else []Instr

	// Callee names the function for OpCall; Args its arguments.
	Callee string
	Args   []Operand

	// Annotation metadata, filled by the compiler.
	//
	// Protos is the set of protocol names this annotation may dispatch
	// to, computed by the space/protocol dataflow analysis. Direct is set
	// when the set is a singleton and the direct-dispatch pass bound the
	// call; DirectProto is that protocol. Bare marks a section bracket
	// whose partner was a deleted null handler: it invokes the protocol
	// routine directly, without the runtime's section bookkeeping (the
	// paper's runtime kept no such bookkeeping at all).
	Protos      []string
	Direct      bool
	DirectProto string
	Bare        bool
}

// Func is an IR function.
type Func struct {
	Name string
	// Params declares the parameter locals (slots 0..len-1) and their
	// types.
	Params []Type
	// NumLocals is the total local slot count (params included).
	NumLocals int
	// LocalTypes records each local's declared type (best effort; the
	// analysis refines region spaces).
	LocalTypes []Type
	Body       []Instr
}

// Type is a declared IR type: a kind plus, for region values, the set of
// spaces the region may belong to and the space set of region ids stored
// in its slots (the language-level type information Shasta lacks at link
// time — Section 1.1).
type Type struct {
	Kind Kind
	// Spaces is the set of space ids a KRegion value may belong to.
	Spaces []int
	// ElemSpaces is, for regions whose slots hold region ids, the space
	// set of those ids.
	ElemSpaces []int
}

// Program is a compilation unit.
type Program struct {
	Funcs map[string]*Func
	// SpaceProtos maps each space id to the protocols it may run under
	// during the program (its NewSpace protocol plus every ChangeProtocol
	// target) — the product of the paper's space/protocol analysis inputs.
	SpaceProtos map[int][]string
}

// Clone deep-copies the program so each compilation level starts from the
// same input.
func (p *Program) Clone() *Program {
	out := &Program{Funcs: make(map[string]*Func, len(p.Funcs)), SpaceProtos: make(map[int][]string, len(p.SpaceProtos))}
	for k, v := range p.SpaceProtos {
		out.SpaceProtos[k] = append([]string(nil), v...)
	}
	for name, f := range p.Funcs {
		nf := &Func{
			Name:       f.Name,
			Params:     append([]Type(nil), f.Params...),
			NumLocals:  f.NumLocals,
			LocalTypes: append([]Type(nil), f.LocalTypes...),
			Body:       cloneInstrs(f.Body),
		}
		out.Funcs[name] = nf
	}
	return out
}

func cloneInstrs(in []Instr) []Instr {
	out := make([]Instr, len(in))
	for i, ins := range in {
		out[i] = ins
		out[i].Body = cloneInstrs(ins.Body)
		out[i].Else = cloneInstrs(ins.Else)
		out[i].Args = append([]Operand(nil), ins.Args...)
		out[i].Protos = append([]string(nil), ins.Protos...)
	}
	return out
}
