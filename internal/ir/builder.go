package ir

import (
	"fmt"
	"sort"
)

// Builder constructs IR functions with structured control flow. Bodies are
// built with closures:
//
//	b := ir.NewBuilder("kernel", params...)
//	i := b.Local(ir.KInt)
//	b.Loop(i, ir.CI(0), n, func() {
//	    v := b.SharedLoad(ir.KFloat, base, ir.L(i))
//	    ...
//	})
//	b.Ret(ir.L(sum))
//	f := b.Func()
type Builder struct {
	f     *Func
	stack [][]Instr
}

// NewBuilder starts a function whose parameters occupy the first local
// slots.
func NewBuilder(name string, params ...Type) *Builder {
	f := &Func{Name: name, Params: params, NumLocals: len(params)}
	f.LocalTypes = append(f.LocalTypes, params...)
	b := &Builder{f: f}
	b.stack = [][]Instr{nil}
	return b
}

// Local allocates a new local slot of the given kind.
func (b *Builder) Local(k Kind) int {
	return b.LocalTyped(Type{Kind: k})
}

// LocalTyped allocates a new local slot with a full type.
func (b *Builder) LocalTyped(t Type) int {
	slot := b.f.NumLocals
	b.f.NumLocals++
	b.f.LocalTypes = append(b.f.LocalTypes, t)
	return slot
}

// Func finishes and returns the function.
func (b *Builder) Func() *Func {
	if len(b.stack) != 1 {
		panic("ir: unclosed control structure")
	}
	b.f.Body = b.stack[0]
	return b.f
}

func (b *Builder) emit(i Instr) {
	top := len(b.stack) - 1
	b.stack[top] = append(b.stack[top], i)
}

// Const assigns a constant to a fresh local and returns the slot.
func (b *Builder) Const(v Value) int {
	dst := b.Local(v.K)
	b.emit(Instr{Op: OpConst, Dst: dst, ConstVal: v})
	return dst
}

// Move copies an operand into a fresh local.
func (b *Builder) Move(k Kind, src Operand) int {
	dst := b.Local(k)
	b.emit(Instr{Op: OpMove, Dst: dst, A: src})
	return dst
}

// MoveTo copies an operand into an existing local.
func (b *Builder) MoveTo(dst int, src Operand) {
	b.emit(Instr{Op: OpMove, Dst: dst, A: src})
}

// Bin applies a binary operator into a fresh local.
func (b *Builder) Bin(k Kind, op BinOp, x, y Operand) int {
	dst := b.Local(k)
	b.emit(Instr{Op: OpBin, Dst: dst, Bin: op, A: x, B: y})
	return dst
}

// BinTo applies a binary operator into an existing local.
func (b *Builder) BinTo(dst int, op BinOp, x, y Operand) {
	b.emit(Instr{Op: OpBin, Dst: dst, Bin: op, A: x, B: y})
}

// Un applies a unary operator into a fresh local.
func (b *Builder) Un(k Kind, op UnOp, x Operand) int {
	dst := b.Local(k)
	b.emit(Instr{Op: OpUn, Dst: dst, Un: op, A: x})
	return dst
}

// SharedLoad reads a slot of a shared region into a fresh local.
func (b *Builder) SharedLoad(k Kind, base, index Operand) int {
	dst := b.Local(k)
	b.emit(Instr{Op: OpSharedLoad, Dst: dst, A: base, B: index, ElemKind: k})
	return dst
}

// SharedStore writes a slot of a shared region.
func (b *Builder) SharedStore(k Kind, base, index, src Operand) {
	b.emit(Instr{Op: OpSharedStore, Dst: -1, A: base, B: index, Src: src, ElemKind: k})
}

// Barrier emits a barrier on the given space id.
func (b *Builder) Barrier(space int) {
	b.emit(Instr{Op: OpBarrier, Dst: -1, A: CI(int64(space))})
}

// Loop emits `for dst = start; dst < end; dst++ { body }`.
func (b *Builder) Loop(dst int, start, end Operand, body func()) {
	b.stack = append(b.stack, nil)
	body()
	inner := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.emit(Instr{Op: OpLoop, Dst: dst, A: start, B: end, Body: inner})
}

// If emits a conditional on cond != 0.
func (b *Builder) If(cond Operand, then func(), els func()) {
	b.stack = append(b.stack, nil)
	then()
	thenBody := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	var elseBody []Instr
	if els != nil {
		b.stack = append(b.stack, nil)
		els()
		elseBody = b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
	}
	b.emit(Instr{Op: OpIf, Dst: -1, A: cond, Body: thenBody, Else: elseBody})
}

// GMalloc emits a region allocation from the given space.
func (b *Builder) GMalloc(space int, size Operand) int {
	dst := b.LocalTyped(Type{Kind: KRegion, Spaces: []int{space}})
	b.emit(Instr{Op: OpGMalloc, Dst: dst, A: CI(int64(space)), B: size})
	return dst
}

// BcastID emits a collective region-id broadcast from root.
func (b *Builder) BcastID(k Type, root, id Operand) int {
	dst := b.LocalTyped(k)
	b.emit(Instr{Op: OpBcastID, Dst: dst, A: root, Src: id})
	return dst
}

// ChangeProto emits a collective protocol change on a space.
func (b *Builder) ChangeProto(space int, protoName string) {
	b.emit(Instr{Op: OpChangeProto, Dst: -1, A: CI(int64(space)), Callee: protoName})
}

// Lock emits a region lock acquire.
func (b *Builder) Lock(region Operand) {
	b.emit(Instr{Op: OpLock, Dst: -1, A: region})
}

// Unlock emits a region lock release.
func (b *Builder) Unlock(region Operand) {
	b.emit(Instr{Op: OpUnlock, Dst: -1, A: region})
}

// Call emits a call to another function; dst < 0 discards the result.
func (b *Builder) Call(dst int, callee string, args ...Operand) {
	b.emit(Instr{Op: OpCall, Dst: dst, Callee: callee, Args: args})
}

// Ret emits a return.
func (b *Builder) Ret(v Operand) {
	b.emit(Instr{Op: OpRet, Dst: -1, A: v})
}

// String renders a function for golden tests and acec output.
func (f *Func) String() string {
	s := fmt.Sprintf("func %s (%d params, %d locals) {\n", f.Name, len(f.Params), f.NumLocals)
	s += renderInstrs(f.Body, "  ")
	return s + "}\n"
}

func renderInstrs(list []Instr, indent string) string {
	var s string
	for _, in := range list {
		s += indent + in.render(indent)
	}
	return s
}

func (in Instr) render(indent string) string {
	direct := ""
	if in.Direct {
		direct = fmt.Sprintf(" [direct:%s]", in.DirectProto)
	}
	if in.Bare {
		direct += " [bare]"
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("l%d = %s\n", in.Dst, in.ConstVal)
	case OpMove:
		return fmt.Sprintf("l%d = %s\n", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("l%d = %s %s %s\n", in.Dst, in.A, binNames[in.Bin], in.B)
	case OpUn:
		return fmt.Sprintf("l%d = %s(%s)\n", in.Dst, unNames[in.Un], in.A)
	case OpSharedLoad:
		return fmt.Sprintf("l%d = shared<%s> %s[%s]\n", in.Dst, in.ElemKind, in.A, in.B)
	case OpSharedStore:
		return fmt.Sprintf("shared<%s> %s[%s] = %s\n", in.ElemKind, in.A, in.B, in.Src)
	case OpMap:
		return fmt.Sprintf("l%d = ACE_MAP(%s)%s\n", in.Dst, in.A, direct)
	case OpUnmap, OpStartRead, OpEndRead, OpStartWrite, OpEndWrite:
		return fmt.Sprintf("%s(%s)%s\n", opNames[in.Op], in.A, direct)
	case OpLoad:
		return fmt.Sprintf("l%d = %s[%s]<%s>\n", in.Dst, in.A, in.B, in.ElemKind)
	case OpStore:
		return fmt.Sprintf("%s[%s]<%s> = %s\n", in.A, in.B, in.ElemKind, in.Src)
	case OpBarrier:
		return fmt.Sprintf("barrier(space %s)\n", in.A)
	case OpLoop:
		return fmt.Sprintf("for l%d = %s; l%d < %s {\n%s%s}\n",
			in.Dst, in.A, in.Dst, in.B, renderInstrs(in.Body, indent+"  "), indent)
	case OpIf:
		s := fmt.Sprintf("if %s {\n%s%s}", in.A, renderInstrs(in.Body, indent+"  "), indent)
		if len(in.Else) > 0 {
			s += fmt.Sprintf(" else {\n%s%s}", renderInstrs(in.Else, indent+"  "), indent)
		}
		return s + "\n"
	case OpCall:
		return fmt.Sprintf("l%d = %s(%v)\n", in.Dst, in.Callee, in.Args)
	case OpRet:
		return fmt.Sprintf("ret %s\n", in.A)
	case OpGMalloc:
		return fmt.Sprintf("l%d = gmalloc(space %s, %s)\n", in.Dst, in.A, in.B)
	case OpBcastID:
		return fmt.Sprintf("l%d = bcastid(root %s, %s)\n", in.Dst, in.A, in.Src)
	case OpChangeProto:
		return fmt.Sprintf("changeprotocol(space %s, %q)\n", in.A, in.Callee)
	case OpLock, OpUnlock:
		return fmt.Sprintf("%s(%s)\n", opNames[in.Op], in.A)
	}
	return "?\n"
}

// FuncStrings renders every function in the program, sorted by name.
func (p *Program) FuncStrings() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = p.Funcs[n].String()
	}
	return out
}
