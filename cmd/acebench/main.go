// Command acebench regenerates the paper's evaluation artifacts:
//
//	acebench -exp fig7a   # Ace runtime vs CRL, sequentially consistent
//	acebench -exp fig7b   # single protocol vs application-specific protocols
//	acebench -exp table4  # compiler optimization levels vs hand-written code
//	acebench -exp fabric  # message-fabric latency/throughput (BENCH_fabric.json)
//	acebench -exp scale   # GOMAXPROCS scaling sweep, sharded dispatch (BENCH_scale.json)
//	acebench -exp chaos   # protocol-conformance stress matrix under fault injection
//	acebench -exp adapt   # adaptive controller vs sc and hand-picked protocols (BENCH_adapt.json)
//	acebench -exp coll    # collective topologies + push aggregation traffic (BENCH_coll.json)
//	acebench -exp gate    # session gateway: 10k ws sessions over 100+ room-spaces (BENCH_gate.json)
//	acebench -exp all
//
// The chaos experiment runs every library protocol through a seeded
// region workload under each named fault policy and checks the
// coherence invariants; a failure prints a replay command. Replaying a
// single cell of the matrix (with -chaos-coll / -chaos-noagg forcing
// the collective topology and aggregation setting of the failing run):
//
//	acebench -exp chaos -chaos-proto update -chaos-policy lossy -chaos-seed 7
//
// Workload sizes are selected with -scale (small | default | paper) and the
// processor count with -procs. Times are wall-clock on the in-process
// cluster; the comparisons' shape, not the absolute numbers, is the
// reproduction target (see EXPERIMENTS.md).
//
// The -metrics and -trace flags switch acebench into instrumented mode:
// instead of an experiment it runs the single benchmark named by -app on
// the Ace runtime with the observability layer enabled, printing the
// metrics tables (-metrics) and/or writing the event trace as Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto (-trace):
//
//	acebench -metrics -app em3d
//	acebench -trace out.json -app tsp -custom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/chaos"
	"github.com/acedsm/ace/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig7a, fig7b, table4, or all")
		procs    = flag.Int("procs", 8, "number of logical processors")
		scale    = flag.String("scale", "default", "workload scale: small, default, or paper")
		runs     = flag.Int("runs", 3, "runs per measurement (best run reported)")
		metrics  = flag.Bool("metrics", false, "instrumented mode: print metrics for one -app run")
		traceOut = flag.String("trace", "", "instrumented mode: write Chrome trace JSON for one -app run to `file`")
		app      = flag.String("app", "em3d", "benchmark for instrumented mode: "+strings.Join(bench.AppNames(), ", "))
		custom   = flag.Bool("custom", false, "instrumented mode: use the application-specific protocol")
		events   = flag.Int("events", 1<<16, "instrumented mode: per-processor event ring capacity for -trace")
		out      = flag.String("out", "", "fabric/bracket experiment: output `file` (default BENCH_<exp>.json)")
		baseline = flag.String("baseline", "", "fabric/bracket experiment: prior report to embed as the comparison baseline")

		chaosProto  = flag.String("chaos-proto", "", "chaos experiment: replay a single protocol instead of the matrix")
		chaosPolicy = flag.String("chaos-policy", "clean", "chaos experiment: fault policy for -chaos-proto ("+strings.Join(chaos.Policies(), ", ")+")")
		chaosSeed   = flag.Int64("chaos-seed", 1, "chaos experiment: base seed (single run: the seed; matrix: seed, seed+1, seed+2)")
		chaosColl   = flag.String("chaos-coll", "", "chaos experiment: force the collective topology for -chaos-proto (star, tree; empty = auto)")
		chaosNoAgg  = flag.Bool("chaos-noagg", false, "chaos experiment: disable push aggregation for -chaos-proto")

		gateSessions = flag.Int("gate-sessions", 10000, "gate experiment: concurrent client sessions")
		gateRooms    = flag.Int("gate-rooms", 128, "gate experiment: rooms the sessions spread over")
		gateAdds     = flag.Int("gate-adds", 8, "gate experiment: adds per session")
		gateWorker   = flag.Bool("gate-worker", false, "internal: run as a gate-experiment session worker")
		gateAddr     = flag.String("gate-addr", "", "internal: gateway address for -gate-worker")
		gateOffset   = flag.Int("gate-offset", 0, "internal: first global session id for -gate-worker")
	)
	flag.Parse()

	if *gateWorker {
		// Session-worker subprocess launched by `-exp gate` (see
		// bench.GateWorkerArgs); it owns a slice of the client sessions so
		// the parent's descriptor budget covers only the server side.
		if err := bench.RunGateWorker(*gateAddr, *gateOffset, *gateSessions, *gateRooms, *gateAdds); err != nil {
			os.Exit(1)
		}
		return
	}

	w := bench.WorkloadsFor(bench.Scale(*scale), *procs)
	if *metrics || *traceOut != "" {
		if !runObserved(w, *app, *custom, *metrics, *traceOut, *events) {
			os.Exit(1)
		}
		return
	}
	ok := true
	switch *exp {
	case "fig7a":
		ok = runFig7a(w, *runs)
	case "fig7b":
		ok = runFig7b(w, *runs)
	case "table4":
		ok = runTable4(*procs)
	case "ablation":
		ok = runAblation(*procs)
	case "fabric":
		ok = runFabric(*procs, reportPath(*out, "BENCH_fabric.json"), *baseline)
	case "bracket":
		ok = runBracket(*procs, reportPath(*out, "BENCH_bracket.json"), *baseline)
	case "scale":
		ok = runScale(w, reportPath(*out, "BENCH_scale.json"))
	case "adapt":
		ok = runAdapt(w, *runs, reportPath(*out, "BENCH_adapt.json"))
	case "chaos":
		ok = runChaos(*chaosProto, *chaosPolicy, *chaosSeed, *procs, *chaosColl, *chaosNoAgg)
	case "coll":
		ok = runColl(w, bench.Scale(*scale), reportPath(*out, "BENCH_coll.json"))
	case "elastic":
		ok = runElastic(w, reportPath(*out, "BENCH_elastic.json"))
	case "gate":
		ok = runGate(*gateSessions, *gateRooms, *gateAdds, *procs, reportPath(*out, "BENCH_gate.json"))
	case "all":
		ok = runFig7a(w, *runs)
		ok = runFig7b(w, *runs) && ok
		ok = runTable4(*procs) && ok
	default:
		fmt.Fprintf(os.Stderr, "acebench: unknown experiment %q (fig7a, fig7b, table4, ablation, fabric, bracket, scale, adapt, chaos, coll, elastic, gate, all)\n", *exp)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// runAdapt runs the adaptive-convergence experiment — every fig-7b
// benchmark started on sc with the online protocol controller enabled,
// compared against controller-off sc and the hand-picked protocols —
// and writes the BENCH_adapt.json artifact.
func runAdapt(w bench.Workloads, runs int, out string) bool {
	fmt.Printf("=== Adaptive: controller-selected protocols vs sc and hand-picked (%d procs) ===\n", w.Procs)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adapt: %v\n", err)
		return false
	}
	rep, err := bench.WriteAdaptReport(f, w, runs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adapt: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatAdapt(rep.Results))
	fmt.Printf("wrote %s\n", out)
	ok := true
	for _, r := range rep.Results {
		if !r.ChecksumOK {
			fmt.Fprintf(os.Stderr, "adapt: %s: adaptive run diverged from sc (checksum mismatch)\n", r.App)
			ok = false
		}
	}
	return ok
}

// runChaos runs the protocol-conformance stress harness: a single
// (protocol, policy, seed) cell when -chaos-proto is given (the replay
// path printed by failing reports, including any forced collective
// topology and aggregation setting), the full matrix over three seeds
// otherwise.
func runChaos(protoName, policy string, seed int64, procs int, coll string, noAgg bool) bool {
	if protoName != "" {
		rep := chaos.Run(chaos.Config{Seed: seed, Procs: procs, Protocol: protoName, Policy: policy, Coll: coll, NoAgg: noAgg})
		fmt.Println(chaos.FormatReport(rep))
		return rep.Err == nil
	}
	seeds := []int64{seed, seed + 1, seed + 2}
	fmt.Printf("=== Chaos: %d protocols × %d fault policies × seeds %v (%d procs) ===\n",
		len(chaos.Protocols()), len(chaos.Policies()), seeds, procs)
	failed := chaos.RunMatrix(seeds, procs)
	if len(failed) == 0 {
		fmt.Printf("all %d runs held the coherence invariants\n",
			len(chaos.Protocols())*len(chaos.Policies())*len(seeds))
		return true
	}
	for _, rep := range failed {
		fmt.Println(chaos.FormatReport(rep))
	}
	fmt.Fprintf(os.Stderr, "chaos: %d of %d runs failed\n",
		len(failed), len(chaos.Protocols())*len(chaos.Policies())*len(seeds))
	return false
}

// runElastic measures the elastic-membership costs — rejoin from the
// last collective checkpoint vs a cold restart (same bit-identical
// checksum, fewer replayed steps and messages) and the adaptive
// controller's traffic-driven region re-homing — writes the
// BENCH_elastic.json artifact, and enforces the acceptance gates.
func runElastic(w bench.Workloads, out string) bool {
	fmt.Printf("=== Elastic: checkpoint/rejoin vs cold restart, traffic-driven re-homing (%d procs) ===\n", w.Procs)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elastic: %v\n", err)
		return false
	}
	rep, err := bench.WriteElasticReport(f, w)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "elastic: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatElastic(rep))
	fmt.Printf("wrote %s\n", out)
	if err := bench.CheckElasticGates(rep); err != nil {
		fmt.Fprintf(os.Stderr, "elastic: acceptance gates failed:\n%v\n", err)
		return false
	}
	fmt.Println("acceptance gates held: bit-identical rejoin below cold-restart cost, >=1 traffic-driven migration")
	return true
}

// runColl measures the collective micro-ops on both topologies across
// cluster sizes and EM3D's per-step coherence traffic with aggregation
// on and off, writes the BENCH_coll.json artifact, and enforces the
// structural acceptance gates: aggregation must cut EM3D's msgs/step at
// least 2x, and the tree must hold allreduce root fan-out to the log
// bound (flat-to-improving against the embedded star baseline).
func runColl(w bench.Workloads, scale bench.Scale, out string) bool {
	fmt.Printf("=== Collectives: star vs binomial tree, push aggregation on vs off (%d em3d procs) ===\n", w.Procs)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coll: %v\n", err)
		return false
	}
	rep, err := bench.WriteCollReport(f, w, scale)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coll: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatColl(rep))
	fmt.Printf("wrote %s\n", out)
	if err := bench.CheckCollGates(rep); err != nil {
		fmt.Fprintf(os.Stderr, "coll: acceptance gates failed:\n%v\n", err)
		return false
	}
	fmt.Println("acceptance gates held: >=2x msgs/step from aggregation, tree root fan-out within log bound")
	return true
}

// runObserved runs one benchmark on the Ace runtime with the
// observability layer on, printing metrics and/or writing a Chrome
// trace.
func runObserved(w bench.Workloads, app string, custom, metrics bool, traceOut string, events int) bool {
	fn, ok := bench.App(w, app, custom)
	if !ok {
		fmt.Fprintf(os.Stderr, "acebench: unknown app %q (%s)\n", app, strings.Join(bench.AppNames(), ", "))
		return false
	}
	cfg := &trace.Config{Metrics: true}
	if traceOut != "" {
		cfg.Events = events
	}
	o, err := bench.RunAceObserved(w.Procs, fn, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acebench: %s: %v\n", app, err)
		return false
	}
	proto := "sc"
	if custom {
		proto = "custom"
	}
	fmt.Printf("=== %s (%s protocol, %d procs): %v total ===\n", app, proto, w.Procs, o.Result.Total)
	if metrics {
		fmt.Println(bench.FormatMetrics(o.Metrics))
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acebench: %v\n", err)
			return false
		}
		werr := trace.WriteChromeTrace(f, o.Events, w.Procs)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "acebench: writing %s: %v\n", traceOut, werr)
			return false
		}
		fmt.Printf("wrote %d events to %s (load in chrome://tracing or Perfetto)\n", len(o.Events), traceOut)
	}
	return true
}

// reportPath returns out, or def when out is empty.
func reportPath(out, def string) string {
	if out == "" {
		return def
	}
	return out
}

// runBracket measures the runtime's section brackets (hit solo, hit
// under concurrent coherence churn, miss) and writes the
// BENCH_bracket.json artifact. A prior report passed with -baseline is
// embedded so the artifact documents the before/after delta.
func runBracket(procs int, out, baselinePath string) bool {
	const (
		hitOps  = 4000000
		missOps = 30000
	)
	var base []bench.BracketResult
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bracket: %v\n", err)
			return false
		}
		var prior bench.BracketReport
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "bracket: parsing %s: %v\n", baselinePath, err)
			return false
		}
		// A report that already embeds the pre-fast-path baseline keeps
		// it, so regenerating the artifact stays anchored to the original
		// comparison point.
		base = prior.Baseline
		if base == nil {
			base = prior.Results
		}
	}
	fmt.Printf("=== Bracket: section open/close cost, hit and miss (%d procs) ===\n", procs)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bracket: %v\n", err)
		return false
	}
	rep, err := bench.WriteBracketReport(f, procs, hitOps, missOps, base)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bracket: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatBracket(rep.Results, rep.Baseline))
	fmt.Printf("wrote %s\n", out)
	return true
}

// runScale sweeps GOMAXPROCS ∈ {1,2,4,8} over the throughput-shaped
// measurements (fabric throughput on both transports, bracket
// hit/churn, em3d) with the dispatch-lane count matched to the core
// count, and writes the BENCH_scale.json artifact. The GOMAXPROCS=1
// rows are the baseline — the speedup column of every other row is
// relative to them.
func runScale(w bench.Workloads, out string) bool {
	const (
		perSender = 40000
		payload   = 16
	)
	fmt.Printf("=== Scale: GOMAXPROCS sweep %v, lanes matched to cores (%d procs, host has %d CPUs) ===\n",
		bench.ScalePoints, w.Procs, runtime.NumCPU())
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		return false
	}
	rep, err := bench.WriteScaleReport(f, w, nil, perSender, payload)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatScale(rep.Results))
	fmt.Printf("wrote %s\n", out)
	return true
}

// runFabric measures the message fabric (roundtrip latency and many-to-
// one throughput on both transports) and writes the BENCH_fabric.json
// artifact. A prior report passed with -baseline is embedded so the
// artifact documents the before/after delta.
func runFabric(procs int, out, baselinePath string) bool {
	const (
		perSender = 40000
		rounds    = 30000
		payload   = 16
	)
	var base []bench.FabricResult
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
			return false
		}
		var prior bench.FabricReport
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "fabric: parsing %s: %v\n", baselinePath, err)
			return false
		}
		// A report that already embeds the pre-fast-path baseline keeps
		// it, so regenerating the artifact stays anchored to the original
		// comparison point.
		base = prior.Baseline
		if base == nil {
			base = prior.Results
		}
	}
	fmt.Printf("=== Fabric: message latency and throughput (%d nodes, %d B payloads) ===\n", procs, payload)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
		return false
	}
	rep, err := bench.WriteFabricReport(f, procs, perSender, rounds, payload, base)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatFabric(rep.Results, rep.Baseline))
	fmt.Printf("wrote %s\n", out)
	return true
}

func runFig7a(w bench.Workloads, runs int) bool {
	fmt.Printf("=== Figure 7a: Ace runtime vs CRL (sequentially consistent, %d procs) ===\n", w.Procs)
	rows, err := bestRows(runs, func() ([]bench.Row, error) { return bench.Fig7a(w) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig7a: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatRows(rows, "crl", "ace"))
	fmt.Println()
	return true
}

func runFig7b(w bench.Workloads, runs int) bool {
	fmt.Printf("=== Figure 7b: single (SC) protocol vs application-specific protocols (%d procs) ===\n", w.Procs)
	rows, err := bestRows(runs, func() ([]bench.Row, error) { return bench.Fig7b(w) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig7b: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatRows(rows, "sc", "custom"))
	fmt.Println()
	return true
}

func runTable4(procs int) bool {
	fmt.Printf("=== Table 4: compiler optimization levels vs hand-written runtime code (%d procs) ===\n", procs)
	out, err := bench.Table4(procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		return false
	}
	fmt.Println(out)
	return true
}

func runAblation(procs int) bool {
	fmt.Printf("=== Ablations: URC capacity, latency sensitivity, granularity (%d procs) ===\n", procs)
	out, err := bench.Ablations(procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
		return false
	}
	fmt.Println(out)
	return true
}

// bestRows runs the experiment `runs` times and keeps, per benchmark, the
// run with the lowest combined time — the usual noise reduction for
// wall-clock measurements on a shared machine.
func bestRows(runs int, f func() ([]bench.Row, error)) ([]bench.Row, error) {
	var best []bench.Row
	for i := 0; i < runs; i++ {
		rows, err := f()
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = rows
			continue
		}
		for j := range rows {
			if rows[j].Base.TimePerIter+rows[j].Opt.TimePerIter <
				best[j].Base.TimePerIter+best[j].Opt.TimePerIter {
				best[j] = rows[j]
			}
		}
	}
	return best, nil
}

// runGate runs the session-gateway load benchmark — ten-thousand-class
// concurrent websocket sessions over a hundred-plus room-spaces on
// loopback, with churn and malformed-frame phases — writes the
// BENCH_gate.json artifact, and enforces the gates (concurrency floor,
// checksum parity, bounded space table, zero panics) in the run.
func runGate(sessions, rooms, adds, procs int, out string) bool {
	fmt.Printf("=== Gate: %d sessions over %d rooms, %d procs ===\n", sessions, rooms, procs)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gate: %v\n", err)
		return false
	}
	cfg := bench.GateConfig{Sessions: sessions, Rooms: rooms, Adds: adds, Procs: procs}
	// Hold the client sessions in worker subprocesses so the parent's
	// RLIMIT_NOFILE budget covers only the server-side sockets.
	if exe, err := os.Executable(); err == nil {
		cfg.WorkerExec = []string{exe}
		cfg.Workers = 2
	}
	rep, err := bench.WriteGateReport(f, cfg)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if rep != nil {
		fmt.Printf("connect+join %d sessions: %.2fs (%.0f joins/s)\n",
			rep.Sessions, rep.ConnectSecs, rep.JoinsPerSec)
		fmt.Printf("apply %d ops: %.2fs (%.0f ops/s), broadcasts %d, send-queue drops %d\n",
			rep.Sessions*rep.Adds, rep.ApplySecs, rep.OpsPerSec,
			rep.Stats.Broadcasts, rep.Stats.SendQueueDrops)
		fmt.Printf("churn %d waves x %d rooms: table %d -> %d slots (bound %d); malformed frames %d (bad %d)\n",
			rep.ChurnWaves, rep.ChurnRooms, rep.SlotsBeforeChurn, rep.SlotsAfterChurn,
			rep.SlotsBound, rep.Malformed, rep.Stats.BadFrames)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gate: %v\n", err)
		return false
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Println("acceptance gates held: concurrency floor, checksum parity, bounded space table, zero panics")
	return true
}
