// Command acebench regenerates the paper's evaluation artifacts:
//
//	acebench -exp fig7a   # Ace runtime vs CRL, sequentially consistent
//	acebench -exp fig7b   # single protocol vs application-specific protocols
//	acebench -exp table4  # compiler optimization levels vs hand-written code
//	acebench -exp all
//
// Workload sizes are selected with -scale (small | default | paper) and the
// processor count with -procs. Times are wall-clock on the in-process
// cluster; the comparisons' shape, not the absolute numbers, is the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/acedsm/ace/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig7a, fig7b, table4, or all")
		procs = flag.Int("procs", 8, "number of logical processors")
		scale = flag.String("scale", "default", "workload scale: small, default, or paper")
		runs  = flag.Int("runs", 3, "runs per measurement (best run reported)")
	)
	flag.Parse()

	w := bench.WorkloadsFor(bench.Scale(*scale), *procs)
	ok := true
	switch *exp {
	case "fig7a":
		ok = runFig7a(w, *runs)
	case "fig7b":
		ok = runFig7b(w, *runs)
	case "table4":
		ok = runTable4(*procs)
	case "ablation":
		ok = runAblation(*procs)
	case "all":
		ok = runFig7a(w, *runs)
		ok = runFig7b(w, *runs) && ok
		ok = runTable4(*procs) && ok
	default:
		fmt.Fprintf(os.Stderr, "acebench: unknown experiment %q (fig7a, fig7b, table4, ablation, all)\n", *exp)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func runFig7a(w bench.Workloads, runs int) bool {
	fmt.Printf("=== Figure 7a: Ace runtime vs CRL (sequentially consistent, %d procs) ===\n", w.Procs)
	rows, err := bestRows(runs, func() ([]bench.Row, error) { return bench.Fig7a(w) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig7a: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatRows(rows, "crl", "ace"))
	fmt.Println()
	return true
}

func runFig7b(w bench.Workloads, runs int) bool {
	fmt.Printf("=== Figure 7b: single (SC) protocol vs application-specific protocols (%d procs) ===\n", w.Procs)
	rows, err := bestRows(runs, func() ([]bench.Row, error) { return bench.Fig7b(w) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig7b: %v\n", err)
		return false
	}
	fmt.Println(bench.FormatRows(rows, "sc", "custom"))
	fmt.Println()
	return true
}

func runTable4(procs int) bool {
	fmt.Printf("=== Table 4: compiler optimization levels vs hand-written runtime code (%d procs) ===\n", procs)
	out, err := bench.Table4(procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table4: %v\n", err)
		return false
	}
	fmt.Println(out)
	return true
}

func runAblation(procs int) bool {
	fmt.Printf("=== Ablations: URC capacity, latency sensitivity, granularity (%d procs) ===\n", procs)
	out, err := bench.Ablations(procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablation: %v\n", err)
		return false
	}
	fmt.Println(out)
	return true
}

// bestRows runs the experiment `runs` times and keeps, per benchmark, the
// run with the lowest combined time — the usual noise reduction for
// wall-clock measurements on a shared machine.
func bestRows(runs int, f func() ([]bench.Row, error)) ([]bench.Row, error) {
	var best []bench.Row
	for i := 0; i < runs; i++ {
		rows, err := f()
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = rows
			continue
		}
		for j := range rows {
			if rows[j].Base.TimePerIter+rows[j].Opt.TimePerIter <
				best[j].Base.TimePerIter+best[j].Opt.TimePerIter {
				best[j] = rows[j]
			}
		}
	}
	return best, nil
}
