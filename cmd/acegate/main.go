// Command acegate serves external websocket clients from an Ace
// cluster: each room maps to one space, created collectively on the
// first join and destroyed collectively on the last leave, with client
// ops applied through brackets by the room's home processor
// (DESIGN.md §14).
//
// Serve a gateway on :8642 with 4 processors and the adaptive
// controller picking each room's protocol from its live traffic:
//
//	acegate -addr :8642 -procs 4 -adapt
//
// The -probe mode is the scripted counterpart used by `make
// gate-smoke`: it connects -clients sessions to a running gateway,
// spreads them over -rooms rooms, has each add a known value to its
// own cell, and then checks that every member of a room reads the same
// final state with the expected sums — checksum parity across
// sessions. Exit 0 on parity, 1 on any mismatch or error.
//
//	acegate -probe -addr 127.0.0.1:8642 -clients 12 -rooms 3
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/gateway"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8642", "listen address (serve) or gateway address (probe)")
		procs    = flag.Int("procs", 4, "processors backing the gateway cluster")
		protocol = flag.String("protocol", "sc", "protocol new room spaces start on")
		adapt    = flag.Bool("adapt", false, "enable the adaptive protocol controller")
		sendq    = flag.Int("sendq", 64, "per-session send queue bound")
		opq      = flag.Int("opq", 256, "per-room op queue bound")
		policy   = flag.String("policy", "drop", "slow-client policy: drop | close")
		probe    = flag.Bool("probe", false, "run as a scripted probe client against -addr")
		clients  = flag.Int("clients", 8, "probe: concurrent client sessions")
		rooms    = flag.Int("rooms", 2, "probe: rooms to spread the sessions over")
		adds     = flag.Int("adds", 16, "probe: adds per session to its own cell")
	)
	flag.Parse()

	if *probe {
		if err := runProbe(*addr, *clients, *rooms, *adds); err != nil {
			fmt.Fprintln(os.Stderr, "acegate probe:", err)
			os.Exit(1)
		}
		return
	}

	cfg := gateway.Config{
		Procs:     *procs,
		Protocol:  *protocol,
		OpQueue:   *opq,
		SendQueue: *sendq,
	}
	if *policy == "close" {
		cfg.Policy = gateway.SlowClose
	}
	if *adapt {
		cfg.Adapt = &core.AdaptConfig{}
	}
	g, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acegate:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acegate:", err)
		os.Exit(1)
	}
	srv := g.Serve(ln)
	fmt.Printf("acegate: serving ws on %s (procs=%d protocol=%s adapt=%v)\n",
		srv.Addr(), *procs, *protocol, *adapt)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	if err := g.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "acegate: shutdown:", err)
		os.Exit(1)
	}
	s := g.Stats().Snapshot()
	fmt.Printf("acegate: sessions=%d rooms=%d/%d ops=%d dropped=%d bad_frames=%d slow_clients=%d\n",
		s.SessionsOpened, s.RoomsCreated, s.RoomsDestroyed, s.OpsApplied, s.OpsDropped, s.BadFrames, s.SlowClients)
}

// runProbe is the scripted parity check: every session adds a known
// value to its own cell, then all sessions in a room must agree on the
// final state, whose per-cell sums are computable in closed form.
func runProbe(addr string, clients, rooms, adds int) error {
	if rooms <= 0 || clients < rooms {
		return fmt.Errorf("need at least one client per room (clients=%d rooms=%d)", clients, rooms)
	}
	probeClients = clients
	type result struct {
		id    int
		state []int64
		err   error
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func(id int) {
			state, err := probeSession(addr, id, rooms, adds)
			results <- result{id: id, state: state, err: err}
		}(i)
	}
	// Expected per-room state: each member of room r adds (id+1) to cell
	// id%RoomCells, adds times.
	want := make([][]int64, rooms)
	for r := range want {
		want[r] = make([]int64, gateway.RoomCells)
	}
	for id := 0; id < clients; id++ {
		want[id%rooms][id%gateway.RoomCells] += int64(adds) * int64(id+1)
	}
	var failed int
	for i := 0; i < clients; i++ {
		res := <-results
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "client %d: %v\n", res.id, res.err)
			failed++
			continue
		}
		r := res.id % rooms
		if got, exp := gateway.Checksum(res.state), gateway.Checksum(want[r]); got != exp {
			fmt.Fprintf(os.Stderr, "client %d room %d: checksum %#x, want %#x\n", res.id, r, got, exp)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d clients failed parity", failed, clients)
	}
	fmt.Printf("acegate probe: %d clients over %d rooms, checksum parity ok\n", clients, rooms)
	return nil
}

func probeSession(addr string, id, rooms, adds int) ([]int64, error) {
	c, err := gateway.DialClient(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(60 * time.Second))
	room := fmt.Sprintf("probe-%d", id%rooms)
	if _, _, err := c.Join(room); err != nil {
		return nil, fmt.Errorf("join %s: %w", room, err)
	}
	cell := id % gateway.RoomCells
	for k := 0; k < adds; k++ {
		if err := c.Add(room, cell, int64(id+1)); err != nil {
			return nil, err
		}
	}
	// Poll until the whole room's state matches the closed form — Get is
	// ordered after all applied ops, so this converges as the other
	// members' adds land.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		state, err := c.Get(room)
		if err != nil {
			return nil, err
		}
		if complete(state, id, rooms, adds) {
			if err := c.Leave(room); err != nil {
				return nil, err
			}
			return state, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("room %s never converged", room)
}

// complete reports whether the room state already reflects every
// member's adds (the closed-form expected sums for this room).
func complete(state []int64, id, rooms, adds int) bool {
	want := make([]int64, gateway.RoomCells)
	// Recompute this room's expectation from the global parameters the
	// probe was launched with (all clients use the same flags).
	r := id % rooms
	for other := r; ; other += rooms {
		if other >= probeClients {
			break
		}
		want[other%gateway.RoomCells] += int64(adds) * int64(other+1)
	}
	for i := range state {
		if state[i] != want[i] {
			return false
		}
	}
	return true
}

// probeClients is set from -clients before sessions start (read-only
// afterwards).
var probeClients int
