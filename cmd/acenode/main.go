// Command acenode runs one OS process's share of a multi-process Ace
// cluster: it hosts one (or a slice of) logical processor(s), discovers
// the other processes through the gossip membership layer, assembles
// the data-plane mesh over supervised TCP, and executes a workload
// SPMD with them.
//
// A 4-node cluster on loopback, one processor per process:
//
//	acenode -nodes 4 -local 0 -gossip 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 1 -seeds 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 2 -seeds 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 3 -seeds 127.0.0.1:7946 -run em3d &
//
// The first process binds a known gossip port and seeds the rest;
// everything else — data-plane ports, membership, failure detection —
// is negotiated. Each process prints its result; the process hosting
// node 0 prints the cluster checksum, which matches the same workload
// on the in-process fabric bit for bit.
//
// The elastic workload adds checkpoint/rejoin (DESIGN.md §13): -ckpt
// names a checkpoint file prefix, every -ckpt-every steps each
// processor writes its snapshot (keeping the last two), and on startup
// the processes collectively agree — AllReduce(Min) over each rank's
// newest on-disk step — on the most recent checkpoint everyone holds,
// restore it, and replay from there. With -recover, a survivor that
// loses a peer mid-run tears its mesh down and re-Joins at the next
// recovery epoch instead of exiting; a SIGKILLed process is restarted
// by its supervisor with -rejoin -epoch <current>, and the cluster
// resumes from the agreed checkpoint with a bit-identical result.
//
// Exit codes: 0 success, 1 usage or bootstrap failure, 2 workload
// error, 3 a peer was lost mid-run (ErrPeerLost — the failure
// detector's verdict surfaced through a failed synchronization wait)
// and -recover was not set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/acedsm/ace"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/rtiface"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 0, "total logical processors in the cluster (required)")
		local    = flag.String("local", "", "comma-separated node ids this process hosts (required)")
		gossipAt = flag.String("gossip", "127.0.0.1:0", "gossip bind address (seed processes need a fixed port)")
		seeds    = flag.String("seeds", "", "comma-separated gossip addresses of peer processes")
		seed     = flag.Int64("seed", 0, "gossip RNG seed")
		interval = flag.Duration("interval", 50*time.Millisecond, "gossip round period")
		suspect  = flag.Duration("suspect", 0, "failure-detector suspicion threshold (default 20 intervals)")
		dead     = flag.Duration("dead", 0, "failure-detector death threshold (default 3x suspicion)")
		joinWait = flag.Duration("join-timeout", 30*time.Second, "bound on membership convergence")
		syncWait = flag.Duration("sync-timeout", 0, "bound on blocking synchronization waits (0 = forever)")
		run      = flag.String("run", "em3d", "workload: em3d | elastic | wait | hang")
		standAl  = flag.Bool("standalone", false, "skip gossip/TCP: run all nodes in this process on the in-process fabric (reference mode)")
		steps    = flag.Int("steps", 10, "em3d: simulation steps")
		size     = flag.Int("size", 256, "em3d: E and H vertices, each")
		protoF   = flag.String("proto", "", "em3d: protocol for the value spaces (empty = default)")
		appSeed  = flag.Int64("app-seed", 42, "em3d: workload seed")
		ckpt     = flag.String("ckpt", "", "elastic: checkpoint file prefix (empty = no checkpoints)")
		ckptEvry = flag.Int("ckpt-every", 2, "elastic: steps between collective checkpoints")
		epochF   = flag.Uint64("epoch", 0, "recovery epoch to join at (0 = fresh deployment)")
		rejoinF  = flag.Bool("rejoin", false, "rejoin a recovering cluster at -epoch (restarted member)")
		recoverF = flag.Bool("recover", false, "elastic: on peer loss, re-join at the next epoch and resume from checkpoint instead of exiting")
		stepDel  = flag.Duration("step-delay", 0, "elastic: sleep after every step (stretches the run for kill drills)")
	)
	flag.Parse()

	localIDs, perr := parseIDs(*local)
	if !*standAl {
		if *nodes <= 0 || perr != nil || len(localIDs) == 0 {
			fmt.Fprintln(os.Stderr, "usage: acenode -nodes N -local i[,j...] [-gossip addr] [-seeds a,b] [-run em3d|elastic|wait|hang]")
			if perr != nil {
				fmt.Fprintln(os.Stderr, "  -local:", perr)
			}
			os.Exit(1)
		}
	} else if *nodes <= 0 {
		fmt.Fprintln(os.Stderr, "usage: acenode -standalone -nodes N [-run em3d|elastic|wait]")
		os.Exit(1)
	}

	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	makeCluster := func(epoch uint64, rejoin bool) (*ace.Cluster, error) {
		if *standAl {
			return ace.NewCluster(ace.Options{Procs: *nodes, SyncTimeout: *syncWait})
		}
		cl, err := ace.Join(ace.NodeConfig{
			Nodes:        *nodes,
			Local:        localIDs,
			Gossip:       *gossipAt,
			Seeds:        seedList,
			Seed:         *seed,
			Interval:     *interval,
			SuspectAfter: *suspect,
			DeadAfter:    *dead,
			JoinTimeout:  *joinWait,
			Epoch:        epoch,
			Rejoin:       rejoin,
			OnResurrect: func(member int) {
				fmt.Printf("acenode: member %d resurrected (restarted with a fresh generation)\n", member)
			},
			Options: ace.Options{SyncTimeout: *syncWait},
		})
		if err == nil {
			fmt.Printf("acenode: joined as node(s) %s of %d (epoch %d)\n", *local, *nodes, epoch)
		}
		return cl, err
	}

	cfg := em3d.DefaultConfig()
	cfg.Steps = *steps
	cfg.Nodes = *size
	cfg.Seed = *appSeed
	cfg.Proto = *protoF

	if *run == "elastic" {
		elasticMain(makeCluster, cfg, *ckpt, *ckptEvry, *stepDel, *epochF, *rejoinF, *recoverF)
		return
	}

	cl, err := makeCluster(*epochF, *rejoinF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acenode: cluster:", err)
		os.Exit(1)
	}
	defer cl.Close()

	switch *run {
	case "wait":
		// Membership only: hold the processors in a barrier so the
		// cluster stays assembled until every process reaches it (or a
		// peer is lost / the sync timeout fires).
		err = cl.Run(func(p *ace.Proc) error {
			p.GlobalBarrier()
			return nil
		})
	case "hang":
		// Join, then block forever without entering any synchronization
		// — the victim role in failure-detection drills: peers in -run
		// wait stay blocked at their barrier until this process is
		// killed and the gossip layer declares its nodes down.
		err = cl.Run(func(p *ace.Proc) error {
			select {}
		})
	case "em3d":
		err = cl.Run(func(p *ace.Proc) error {
			res, err := em3d.Run(rtiface.NewAce(p), cfg)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				fmt.Printf("acenode: em3d checksum %.17g (%d steps, %d vertices)\n",
					res.Checksum, cfg.Steps, cfg.Nodes)
			}
			return nil
		})
	default:
		fmt.Fprintf(os.Stderr, "acenode: unknown workload %q\n", *run)
		os.Exit(1)
	}
	exitOn(err)
}

// elasticMain runs the checkpointing EM3D workload, optionally looping
// through peer-loss recovery: tear down, re-Join at the next epoch,
// agree on the newest checkpoint every rank holds, restore, replay.
func elasticMain(makeCluster func(epoch uint64, rejoin bool) (*ace.Cluster, error),
	cfg em3d.Config, ckpt string, every int, delay time.Duration, epoch uint64, rejoin, recov bool) {
	for {
		cl, err := makeCluster(epoch, rejoin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acenode: cluster:", err)
			os.Exit(1)
		}
		err = cl.Run(func(p *ace.Proc) error {
			el := em3d.ElasticConfig{Every: every, Delay: delay}
			if ckpt != "" {
				el.Save = func(ck *core.Checkpoint) error {
					return saveCheckpoint(ckpt, p.ID(), ck)
				}
				// Collective resume decision: the newest step every rank
				// has on disk (-1 where none). Keep-last-2 retention makes
				// the agreed step present everywhere — ranks are at most
				// one save apart, since saving step K happens before
				// entering the collectives that lead to step K+every.
				my := latestCheckpointStep(ckpt, p.ID())
				agreed := p.AllReduceInt64(ace.OpMin, my)
				if agreed >= 0 {
					ck, err := loadCheckpoint(ckpt, p.ID(), agreed)
					if err != nil {
						return err
					}
					el.Resume = ck
					fmt.Printf("acenode: node %d restored from checkpoint step=%d\n", p.ID(), agreed)
				}
			}
			res, err := em3d.RunElastic(p, cfg, el)
			if err != nil {
				return err
			}
			// Every rank prints: the checksum is an AllReduce, so the
			// lines must be bit-identical — including on a rank that
			// crashed and rejoined, which is the parity the smoke
			// script asserts.
			fmt.Printf("acenode: em3d checksum %.17g (%d steps, %d vertices)\n",
				res.Checksum, cfg.Steps, cfg.Nodes)
			return nil
		})
		cl.Close()
		if err != nil && errors.Is(err, ace.ErrPeerLost) && recov {
			epoch++
			rejoin = true
			fmt.Printf("acenode: peer lost; recovering at epoch %d\n", epoch)
			continue
		}
		exitOn(err)
		return
	}
}

func exitOn(err error) {
	if err == nil {
		fmt.Println("acenode: done")
		return
	}
	fmt.Fprintln(os.Stderr, "acenode: run:", err)
	if errors.Is(err, ace.ErrPeerLost) {
		os.Exit(3)
	}
	os.Exit(2)
}

// ckptFile names rank's checkpoint of one application step.
func ckptFile(prefix string, rank int, step int64) string {
	return fmt.Sprintf("%s.%d.%d", prefix, rank, step)
}

// saveCheckpoint atomically writes one checkpoint file (temp + rename,
// so a kill mid-write leaves no torn image behind) and prunes this
// rank's older files down to the last two steps.
func saveCheckpoint(prefix string, rank int, ck *core.Checkpoint) error {
	path := ckptFile(prefix, rank, int64(ck.App))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, ace.EncodeCheckpoint(ck), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	steps := checkpointSteps(prefix, rank)
	for len(steps) > 2 {
		os.Remove(ckptFile(prefix, rank, steps[0]))
		steps = steps[1:]
	}
	return nil
}

// checkpointSteps lists the steps of rank's on-disk checkpoints,
// ascending.
func checkpointSteps(prefix string, rank int) []int64 {
	matches, _ := filepath.Glob(fmt.Sprintf("%s.%d.*", prefix, rank))
	var steps []int64
	for _, m := range matches {
		suffix := m[strings.LastIndexByte(m, '.')+1:]
		n, err := strconv.ParseInt(suffix, 10, 64)
		if err != nil {
			continue // .tmp leftovers and strangers
		}
		steps = append(steps, n)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps
}

// latestCheckpointStep returns the newest step rank has on disk, or -1.
func latestCheckpointStep(prefix string, rank int) int64 {
	steps := checkpointSteps(prefix, rank)
	if len(steps) == 0 {
		return -1
	}
	return steps[len(steps)-1]
}

// loadCheckpoint reads and decodes one checkpoint file.
func loadCheckpoint(prefix string, rank int, step int64) (*core.Checkpoint, error) {
	buf, err := os.ReadFile(ckptFile(prefix, rank, step))
	if err != nil {
		return nil, err
	}
	ck, err := ace.DecodeCheckpoint(buf)
	if err != nil {
		return nil, fmt.Errorf("acenode: checkpoint %s: %w", ckptFile(prefix, rank, step), err)
	}
	return ck, nil
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, errors.New("empty")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
