// Command acenode runs one OS process's share of a multi-process Ace
// cluster: it hosts one (or a slice of) logical processor(s), discovers
// the other processes through the gossip membership layer, assembles
// the data-plane mesh over supervised TCP, and executes a workload
// SPMD with them.
//
// A 4-node cluster on loopback, one processor per process:
//
//	acenode -nodes 4 -local 0 -gossip 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 1 -seeds 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 2 -seeds 127.0.0.1:7946 -run em3d &
//	acenode -nodes 4 -local 3 -seeds 127.0.0.1:7946 -run em3d &
//
// The first process binds a known gossip port and seeds the rest;
// everything else — data-plane ports, membership, failure detection —
// is negotiated. Each process prints its result; the process hosting
// node 0 prints the cluster checksum, which matches the same workload
// on the in-process fabric bit for bit.
//
// Exit codes: 0 success, 1 usage or bootstrap failure, 2 workload
// error, 3 a peer was lost mid-run (ErrPeerLost — the failure
// detector's verdict surfaced through a failed synchronization wait).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/acedsm/ace"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/rtiface"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 0, "total logical processors in the cluster (required)")
		local    = flag.String("local", "", "comma-separated node ids this process hosts (required)")
		gossipAt = flag.String("gossip", "127.0.0.1:0", "gossip bind address (seed processes need a fixed port)")
		seeds    = flag.String("seeds", "", "comma-separated gossip addresses of peer processes")
		seed     = flag.Int64("seed", 0, "gossip RNG seed")
		interval = flag.Duration("interval", 50*time.Millisecond, "gossip round period")
		suspect  = flag.Duration("suspect", 0, "failure-detector suspicion threshold (default 20 intervals)")
		dead     = flag.Duration("dead", 0, "failure-detector death threshold (default 3x suspicion)")
		joinWait = flag.Duration("join-timeout", 30*time.Second, "bound on membership convergence")
		syncWait = flag.Duration("sync-timeout", 0, "bound on blocking synchronization waits (0 = forever)")
		run      = flag.String("run", "em3d", "workload: em3d | wait | hang")
		standAl  = flag.Bool("standalone", false, "skip gossip/TCP: run all nodes in this process on the in-process fabric (reference mode)")
		steps    = flag.Int("steps", 10, "em3d: simulation steps")
		size     = flag.Int("size", 256, "em3d: E and H vertices, each")
		proto    = flag.String("proto", "", "em3d: protocol for the value spaces (empty = default)")
		appSeed  = flag.Int64("app-seed", 42, "em3d: workload seed")
	)
	flag.Parse()

	var cl *ace.Cluster
	if *standAl {
		if *nodes <= 0 {
			fmt.Fprintln(os.Stderr, "usage: acenode -standalone -nodes N [-run em3d|wait]")
			os.Exit(1)
		}
		var err error
		cl, err = ace.NewCluster(ace.Options{Procs: *nodes, SyncTimeout: *syncWait})
		if err != nil {
			fmt.Fprintln(os.Stderr, "acenode: cluster:", err)
			os.Exit(1)
		}
	} else {
		localIDs, err := parseIDs(*local)
		if *nodes <= 0 || err != nil || len(localIDs) == 0 {
			fmt.Fprintln(os.Stderr, "usage: acenode -nodes N -local i[,j...] [-gossip addr] [-seeds a,b] [-run em3d|wait]")
			if err != nil {
				fmt.Fprintln(os.Stderr, "  -local:", err)
			}
			os.Exit(1)
		}
		var seedList []string
		if *seeds != "" {
			seedList = strings.Split(*seeds, ",")
		}
		cl, err = ace.Join(ace.NodeConfig{
			Nodes:        *nodes,
			Local:        localIDs,
			Gossip:       *gossipAt,
			Seeds:        seedList,
			Seed:         *seed,
			Interval:     *interval,
			SuspectAfter: *suspect,
			DeadAfter:    *dead,
			JoinTimeout:  *joinWait,
			Options:      ace.Options{SyncTimeout: *syncWait},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "acenode: join:", err)
			os.Exit(1)
		}
		fmt.Printf("acenode: joined as node(s) %s of %d\n", *local, *nodes)
	}
	defer cl.Close()

	var err error
	switch *run {
	case "wait":
		// Membership only: hold the processors in a barrier so the
		// cluster stays assembled until every process reaches it (or a
		// peer is lost / the sync timeout fires).
		err = cl.Run(func(p *ace.Proc) error {
			p.GlobalBarrier()
			return nil
		})
	case "hang":
		// Join, then block forever without entering any synchronization
		// — the victim role in failure-detection drills: peers in -run
		// wait stay blocked at their barrier until this process is
		// killed and the gossip layer declares its nodes down.
		err = cl.Run(func(p *ace.Proc) error {
			select {}
		})
	case "em3d":
		cfg := em3d.DefaultConfig()
		cfg.Steps = *steps
		cfg.Nodes = *size
		cfg.Seed = *appSeed
		cfg.Proto = *proto
		err = cl.Run(func(p *ace.Proc) error {
			res, err := em3d.Run(rtiface.NewAce(p), cfg)
			if err != nil {
				return err
			}
			if p.ID() == 0 {
				fmt.Printf("acenode: em3d checksum %.17g (%d steps, %d vertices)\n",
					res.Checksum, cfg.Steps, cfg.Nodes)
			}
			return nil
		})
	default:
		fmt.Fprintf(os.Stderr, "acenode: unknown workload %q\n", *run)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acenode: run:", err)
		if errors.Is(err, ace.ErrPeerLost) {
			os.Exit(3)
		}
		os.Exit(2)
	}
	fmt.Println("acenode: done")
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, errors.New("empty")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
