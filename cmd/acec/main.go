// Command acec is the Ace compiler driver: it compiles a MiniAce source
// file and shows the generated runtime annotations at each optimization
// level of Section 4.2, plus static annotation counts.
//
//	acec prog.ace              # print IR at every level
//	acec -level LI+MC prog.ace # one level only
//	acec -config prog.ace      # also print the system configuration file
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/lang"
	"github.com/acedsm/ace/proto"
)

func main() {
	var (
		level     = flag.String("level", "", "optimization level: base, LI, LI+MC, LI+MC+DC (default: all)")
		dumpConf  = flag.Bool("config", false, "print the protocol system configuration file")
		countOnly = flag.Bool("counts", false, "print only static annotation counts")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acec [-level L] [-config] [-counts] file.ace")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, spaces, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	reg := proto.NewRegistry()
	if *dumpConf {
		fmt.Println("// system configuration file (Figure 1)")
		if err := reg.WriteConfig(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("// spaces:")
	for i, sd := range spaces {
		fmt.Printf(" %d=%s(%v)", i, sd.Name, sd.Protos)
	}
	fmt.Println()

	levels := map[string]compiler.Level{
		"base": compiler.LevelBase, "LI": compiler.LevelLI,
		"LI+MC": compiler.LevelMC, "LI+MC+DC": compiler.LevelDC,
	}
	order := []string{"base", "LI", "LI+MC", "LI+MC+DC"}
	if *level != "" {
		if _, ok := levels[*level]; !ok {
			fatal(fmt.Errorf("unknown level %q", *level))
		}
		order = []string{*level}
	}
	for _, name := range order {
		out, err := compiler.Compile(prog, reg.Decls(), levels[name])
		if err != nil {
			fatal(err)
		}
		counts := compiler.AnnotationCounts(out)
		fmt.Printf("\n// ===== level %s: static annotations %v =====\n", name, counts)
		if *countOnly {
			continue
		}
		for _, f := range sortedFuncs(out) {
			fmt.Print(f)
		}
	}
}

func sortedFuncs(p interface{ FuncStrings() []string }) []string { return p.FuncStrings() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acec:", err)
	os.Exit(1)
}
