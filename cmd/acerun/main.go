// Command acerun compiles a MiniAce program and executes it SPMD on an
// in-process cluster: one VM instance per logical processor, the entry
// point being
//
//	func main(me: int, procs: int): float
//
// Usage:
//
//	acerun -procs 4 -level LI+MC+DC prog.ace
//
// Each processor's return value is printed; spaces are created from the
// program's space declarations (first protocol listed).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"github.com/acedsm/ace/internal/compiler"
	"github.com/acedsm/ace/internal/core"
	"github.com/acedsm/ace/internal/ir"
	"github.com/acedsm/ace/internal/lang"
	"github.com/acedsm/ace/internal/vm"
	"github.com/acedsm/ace/proto"
)

func main() {
	var (
		procs = flag.Int("procs", 4, "number of logical processors")
		level = flag.String("level", "LI+MC+DC", "optimization level: base, LI, LI+MC, LI+MC+DC")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acerun [-procs N] [-level L] file.ace")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	levels := map[string]compiler.Level{
		"base": compiler.LevelBase, "LI": compiler.LevelLI,
		"LI+MC": compiler.LevelMC, "LI+MC+DC": compiler.LevelDC,
	}
	lvl, ok := levels[*level]
	if !ok {
		fatal(fmt.Errorf("unknown level %q", *level))
	}
	prog, spaces, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if prog.Funcs["main"] == nil {
		fatal(fmt.Errorf("program has no func main"))
	}
	compiled, err := compiler.Compile(prog, proto.NewRegistry().Decls(), lvl)
	if err != nil {
		fatal(err)
	}
	cl, err := core.NewCluster(core.Options{Procs: *procs, Registry: proto.NewRegistry()})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	var mu sync.Mutex
	results := make([]ir.Value, *procs)
	err = cl.Run(func(p *core.Proc) error {
		rtSpaces := make(map[int]*core.Space, len(spaces))
		for i, sd := range spaces {
			sp, err := p.NewSpace(sd.Protos[0])
			if err != nil {
				return err
			}
			rtSpaces[i] = sp
		}
		m := vm.New(p, compiled, rtSpaces)
		v, err := m.Call("main", ir.Int(int64(p.ID())), ir.Int(int64(p.Procs())))
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.ID()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		fatal(err)
	}
	m := cl.Metrics()
	for i, v := range results {
		fmt.Printf("proc %d: %v\n", i, v)
	}
	fmt.Printf("(%d messages, %d bytes)\n", m.Net.MsgsSent, m.Net.BytesSent)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acerun:", err)
	os.Exit(1)
}
