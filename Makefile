GO ?= go

# Packages whose lock-free instrumentation paths must stay race-clean.
RACE_PKGS = ./internal/trace ./internal/core ./internal/amnet ./internal/tcpnet

.PHONY: ci vet build test race bench bench-smoke

ci: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench regenerates the committed benchmark artifacts: the bracket
# overhead numbers and the fabric report (BENCH_fabric.json, which keeps
# its embedded pre-fast-path baseline for the before/after comparison).
bench:
	$(GO) test -bench BenchmarkBracket -benchmem -run '^$$' .
	$(GO) run ./cmd/acebench -exp fabric -baseline BENCH_fabric.json -out BENCH_fabric.json

# bench-smoke runs the fabric benchmarks briefly so CI catches a stalled
# or asserting fast path without paying for full measurements.
bench-smoke:
	$(GO) test -bench 'BenchmarkFabric' -benchtime=100ms -run '^$$' ./internal/bench
