GO ?= go

# Packages whose lock-free instrumentation paths must stay race-clean.
# proto rides along for the adaptive-controller convergence tests: the
# controller's counter snapshots and collective decisions run
# concurrently with the bracket fast path. core and amnet also carry the
# tree-collective and shared-payload fan-out paths (coll_test.go,
# multisend_test.go); proto the aggregated push frames. gateway carries
# the session fan-out: per-session writers, the coordinator, and the
# room drains all share the stats and send-queue paths.
RACE_PKGS = ./internal/trace ./internal/core ./internal/amnet ./internal/tcpnet ./internal/gossip ./proto ./internal/gateway

.PHONY: ci vet build test race bench bench-smoke bench-allocs chaos-smoke cluster-smoke gate-smoke

ci: vet build test race bench-smoke bench-allocs chaos-smoke cluster-smoke gate-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -cpu 1,4 runs each race test single-context and multicore: the
# sharded-dispatch paths only interleave for real when the pumps have
# more than one hardware context to run on.
race:
	$(GO) test -race -cpu 1,4 $(RACE_PKGS)

# bench regenerates the committed benchmark artifacts: the bracket
# overhead numbers and the fabric/bracket reports (each keeps its
# embedded pre-optimization baseline for the before/after comparison).
bench:
	$(GO) test -bench BenchmarkBracket -benchmem -run '^$$' .
	$(GO) run ./cmd/acebench -exp fabric -baseline BENCH_fabric.json -out BENCH_fabric.json
	$(GO) run ./cmd/acebench -exp bracket -baseline BENCH_bracket.json -out BENCH_bracket.json
	$(GO) run ./cmd/acebench -exp scale
	$(GO) run ./cmd/acebench -exp coll
	$(GO) run ./cmd/acebench -exp elastic

# bench-smoke runs the fabric benchmarks briefly so CI catches a stalled
# or asserting fast path without paying for full measurements, plus one
# small-scale pass of the adaptive-convergence experiment (the artifact
# goes to a scratch path so the committed default-scale BENCH_adapt.json
# is not clobbered; the run fails on any sc/adaptive checksum mismatch).
bench-smoke:
	$(GO) test -bench 'BenchmarkFabric' -benchtime=100ms -run '^$$' ./internal/bench
	$(GO) run ./cmd/acebench -exp adapt -scale small -out /tmp/acebench_adapt_smoke.json
	$(GO) run ./cmd/acebench -exp scale -procs 4 -scale small -out /tmp/acebench_scale_smoke.json
	$(GO) run ./cmd/acebench -exp coll -procs 4 -scale small -out /tmp/acebench_coll_smoke.json
	$(GO) run ./cmd/acebench -exp elastic -procs 4 -scale small -out /tmp/acebench_elastic_smoke.json
	$(GO) run ./cmd/acebench -exp gate -gate-sessions 400 -gate-rooms 16 -out /tmp/acebench_gate_smoke.json

# chaos-smoke is the protocol-conformance stress gate: the fixed-seed
# protocol × fault-policy matrix (seeds 1..3) via the package tests,
# the collective topology × aggregation cells (tree/star, agg on/off,
# lane-overlap stress, star-vs-tree bit-identical reductions), the
# elastic cells (checkpoint/kill/rejoin drills, MigrateHome
# mid-workload, the broken-rejoin double), plus race-enabled cells: the
# nastiest matrix policy, one rejoin drill, and the MigrateHome-vs-
# bracket-fast-path stress. Fixed seeds keep it deterministic. The
# space-churn cells cover the lifecycle itself: waves of collective
# NewSpace/FreeSpace under every fault policy, with bounded-table,
# stale-ref and generation checks (plus a lossy cell under -race).
chaos-smoke:
	$(GO) test -run 'TestMatrixFixedSeeds|TestBrokenDoubleCaught' ./internal/chaos
	$(GO) test -run 'TestColl|TestStarTreeReductionBitIdentical' ./internal/chaos
	$(GO) test -run 'TestRejoinFixedSeeds|TestBrokenRejoinCaught|TestMigrateFixedSeeds' ./internal/chaos
	$(GO) test -run 'TestSpaceChurn' ./internal/chaos
	$(GO) test -race -run 'TestMatrixFixedSeeds/^(update|adaptive)$$/lossy' ./internal/chaos
	$(GO) test -race -run 'TestCollTopologyCells/update/tree\+agg/lossy' ./internal/chaos
	$(GO) test -race -run 'TestRejoinFixedSeeds/update/jittery' ./internal/chaos
	$(GO) test -race -run 'TestSpaceChurnFixedSeeds/update/lossy' ./internal/chaos
	$(GO) test -race -run 'TestMigrateHomeRace|TestRejoinVsTreeReduction' ./internal/core

# cluster-smoke is the multi-process deployment gate: 4 real acenode
# processes assemble over gossip + TCP on loopback, run em3d (checksum
# must match the in-process run), and a SIGKILLed member must surface as
# ErrPeerLost on every survivor within the detector bound.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# gate-smoke is the session-gateway deployment gate: a real acegate
# process on loopback takes scripted websocket probe fleets (checksum
# parity across every member of a room), re-creates its rooms in
# recycled space slots on a rerun, shrugs off garbage connections, and
# must exit with rooms created == destroyed (no leaked spaces).
gate-smoke:
	bash scripts/gate_smoke.sh

# bench-allocs is the regression gate for the lock-free bracket fast
# path: with tracing disabled a hit bracket must not allocate. The awk
# exit status fails the target if allocs/op is ever nonzero.
bench-allocs:
	$(GO) test -bench 'BenchmarkBracket/disabled' -benchmem -benchtime=200ms -run '^$$' . | tee /dev/stderr \
	| awk '/^BenchmarkBracket/ { if ($$(NF-1) + 0 != 0) { print "FAIL: bracket fast path allocates: " $$0; bad = 1 } } END { exit bad }' >/dev/null
