GO ?= go

# Packages whose lock-free instrumentation paths must stay race-clean.
RACE_PKGS = ./internal/trace ./internal/core ./internal/amnet ./internal/tcpnet

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench BenchmarkBracket -benchmem -run '^$$' .
