// Quickstart: the Ace programming model in one file.
//
// An SPMD cluster of four logical processors shares a small table of
// counters. The program is developed against the default sequentially
// consistent protocol, then — without touching the access code — the
// space is switched to the migratory protocol (Section 3.1's workflow:
// develop under SC, tune by changing the space's protocol).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/acedsm/ace"
)

func main() {
	cl, err := ace.NewCluster(ace.Options{Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	err = cl.Run(func(p *ace.Proc) error {
		// A space is an allocation arena bound to a protocol; "sc" is the
		// sequentially consistent default.
		sp, err := p.NewSpace("sc")
		if err != nil {
			return err
		}

		// Processor 0 allocates a shared region and broadcasts its id.
		var id ace.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 8)
		}
		id = p.BroadcastID(0, id)

		// Everyone increments the shared counter 100 times. StartWrite
		// acquires the region exclusively under SC, so no increment is
		// lost.
		r := p.Map(id)
		for i := 0; i < 100; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.Barrier(sp)

		p.StartRead(r)
		total := r.Data.Int64(0)
		p.EndRead(r)
		if p.ID() == 0 {
			fmt.Printf("under sc:        counter = %d (want 400)\n", total)
		}

		// Same access code, different protocol: switch the space to the
		// migratory protocol and run the same loop.
		if err := p.ChangeProtocol(sp, "migratory"); err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			p.StartWrite(r)
			r.Data.SetInt64(0, r.Data.Int64(0)+1)
			p.EndWrite(r)
		}
		p.Barrier(sp)

		p.StartRead(r)
		total = r.Data.Int64(0)
		p.EndRead(r)
		if p.ID() == 0 {
			fmt.Printf("under migratory: counter = %d (want 800)\n", total)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cl.Metrics()
	fmt.Printf("cluster traffic: %d messages, %d bytes\n", m.Net.MsgsSent, m.Net.BytesSent)
}
