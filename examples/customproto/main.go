// Writing a new protocol: the extensibility mechanism of Section 2.4.
//
// This program defines a *tracing* protocol — a thin wrapper over the
// runtime's services that counts every access-control invocation and
// piggybacks on the default lock and barrier — registers it (the analogue
// of running the paper's registration script, Figure 1), emits the system
// configuration file the compiler would consume, and runs an application
// under it.
//
// Protocols receive full access control: hooks before and after reads and
// writes and at synchronization points, with ctx.* providing the messaging
// and waiter substrate (Section 3.2).
//
// Run: go run ./examples/customproto
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"

	"github.com/acedsm/ace"
	"github.com/acedsm/ace/internal/amnet"
)

// traceProto is a simple custom protocol: a verified-fetch protocol for
// read-mostly data. Reads fetch from the home on first touch and count
// accesses; writes must be home-local (it is a read-mostly protocol);
// barriers self-invalidate cached copies so each phase re-reads fresh
// data. It demonstrates the pieces a protocol designer combines: local
// state, one message verb, a waiter, and per-space instance fields.
type traceProto struct {
	ace.Base
	reads, writes, fetches atomic.Int64
}

const verbFetch = 1

func (t *traceProto) Name() string { return "trace" }

func (t *traceProto) StartRead(ctx *ace.Ctx, r *ace.Region) {
	t.reads.Add(1)
	if r.IsHome() || r.State == 1 {
		return
	}
	t.fetches.Add(1)
	seq := ctx.NewWaiter()
	ctx.SendProto(r.Home, uint64(r.ID), seq, verbFetch, uint64(r.Space.ID), nil)
	m := ctx.Wait(seq)
	copy(r.Data, m.Payload)
	r.State = 1
}

func (t *traceProto) StartWrite(ctx *ace.Ctx, r *ace.Region) {
	t.writes.Add(1)
	if !r.IsHome() {
		panic("trace protocol: writes must be home-local")
	}
}

func (t *traceProto) Barrier(ctx *ace.Ctx, sp *ace.Space) {
	ctx.ForEachRegion(func(r *ace.Region) {
		if r.Space == sp && !r.IsHome() {
			r.State = 0
		}
	})
	ctx.DefaultBarrier()
}

func (t *traceProto) Deliver(ctx *ace.Ctx, sp *ace.Space, r *ace.Region, m amnet.Msg) {
	switch m.C {
	case verbFetch:
		ctx.SendComplete(m.Src, m.B, 0, r.Data)
	default:
		panic(fmt.Sprintf("trace protocol: bad verb %d", m.C))
	}
}

func main() {
	// Register the protocol: name, factory, optimizable flag, null
	// points — the contents of the Figure 1 registration form.
	reg := ace.NewRegistry()
	info := ace.Info{
		Name:        "trace",
		New:         func() ace.Protocol { return &traceProto{} },
		Optimizable: true,
		Null: ace.PointSet(0).
			With(ace.PointMap).
			With(ace.PointUnmap).
			With(ace.PointEndRead).
			With(ace.PointEndWrite),
	}
	if err := reg.Register(info); err != nil {
		log.Fatal(err)
	}

	// The system configuration file the compiler reads (Figure 1's
	// output), now including our protocol.
	fmt.Println("system configuration file entry for \"trace\":")
	fmt.Println()
	if err := reg.WriteConfig(os.Stdout); err != nil {
		log.Fatal(err)
	}

	cl, err := ace.NewCluster(ace.Options{Procs: 4, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	err = cl.Run(func(p *ace.Proc) error {
		sp, err := p.NewSpace("trace")
		if err != nil {
			return err
		}
		// Each processor publishes a value; everyone reads all of them
		// across two phases.
		var id ace.RegionID
		id = p.GMalloc(sp, 8)
		ids := make([]ace.RegionID, p.Procs())
		for root := 0; root < p.Procs(); root++ {
			if root == p.ID() {
				ids[root] = p.BroadcastID(root, id)
			} else {
				ids[root] = p.BroadcastID(root, 0)
			}
		}
		for phase := 1; phase <= 2; phase++ {
			mine := p.Map(ids[p.ID()])
			p.StartWrite(mine)
			mine.Data.SetInt64(0, int64(p.ID()*10+phase))
			p.EndWrite(mine)
			p.Barrier(sp)
			for q := 0; q < p.Procs(); q++ {
				r := p.Map(ids[q])
				p.StartRead(r)
				if got := r.Data.Int64(0); got != int64(q*10+phase) {
					return fmt.Errorf("phase %d: proc %d read %d from %d", phase, p.ID(), got, q)
				}
				p.EndRead(r)
				p.Unmap(r)
			}
			p.Barrier(sp)
			p.Unmap(mine)
		}
		// Report the per-processor protocol statistics the instance
		// collected.
		tp := sp.Proto.(*traceProto)
		fmt.Printf("proc %d: %d reads, %d writes, %d fetches\n",
			p.ID(), tp.reads.Load(), tp.writes.Load(), tp.fetches.Load())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom protocol ran correctly")
}
