// EM3D with customizable protocols: the Section 3.3 walkthrough.
//
// The application is developed once against the sequentially consistent
// protocol, then re-run with the dynamic update library and the static
// update library plugged in — the only change being the protocol
// configuration, exactly as in Figure 2 (two ChangeProtocol calls). The
// paper reports speedups of 3.5x (dynamic update) and about 5x (static
// update) over the invalidation protocol on the CM-5; this program prints
// the same comparison for the in-process cluster.
//
// Run: go run ./examples/em3d
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/acedsm/ace/internal/apps/apputil"
	"github.com/acedsm/ace/internal/apps/em3d"
	"github.com/acedsm/ace/internal/bench"
	"github.com/acedsm/ace/internal/rtiface"
)

func main() {
	cfg := em3d.DefaultConfig()
	cfg.Nodes = 512
	cfg.Steps = 20
	const procs = 8

	run := func(protoName string) apputil.Result {
		c := cfg
		c.Proto = protoName
		res, err := bench.RunAce(procs, func(rt rtiface.RT) (apputil.Result, error) {
			return em3d.Run(rt, c)
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("EM3D: %d+%d nodes, degree %d, %d%% remote edges, %d steps, %d procs\n\n",
		cfg.Nodes, cfg.Nodes, cfg.Degree, cfg.PctRemote, cfg.Steps, procs)

	sc := run("")
	fmt.Printf("%-22s %10v/iter  %8d msgs   checksum %.6f\n",
		"sequentially consist.", sc.TimePerIter.Round(time.Microsecond), sc.Msgs, sc.Checksum)

	dyn := run("update")
	fmt.Printf("%-22s %10v/iter  %8d msgs   checksum %.6f   speedup %.2fx\n",
		"dynamic update", dyn.TimePerIter.Round(time.Microsecond), dyn.Msgs, dyn.Checksum,
		float64(sc.TimePerIter)/float64(dyn.TimePerIter))

	static := run("staticupdate")
	fmt.Printf("%-22s %10v/iter  %8d msgs   checksum %.6f   speedup %.2fx\n",
		"static update", static.TimePerIter.Round(time.Microsecond), static.Msgs, static.Checksum,
		float64(sc.TimePerIter)/float64(static.TimePerIter))

	if sc.Checksum != dyn.Checksum || sc.Checksum != static.Checksum {
		log.Fatal("checksum mismatch between protocols")
	}
	fmt.Println("\nall protocols computed identical results")
}
