// The Ace runtime over real TCP sockets.
//
// The paper's runtime targets any system with an Active Messages
// mechanism (Section 1). This example swaps the in-process channel fabric
// for TCP loopback connections — every coherence message, barrier and
// update push crosses a real socket — and runs a producer-consumer
// workload under both the sequentially consistent and the dynamic update
// protocols.
//
// Run: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/acedsm/ace"
	"github.com/acedsm/ace/internal/tcpnet"
)

func main() {
	const procs = 4
	cl, err := ace.NewCluster(ace.Options{Procs: procs, Transport: tcpnet.Loopback(procs)})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	err = cl.Run(func(p *ace.Proc) error {
		sp, err := p.NewSpace("update")
		if err != nil {
			return err
		}
		var id ace.RegionID
		if p.ID() == 0 {
			id = p.GMalloc(sp, 64)
		}
		id = p.BroadcastID(0, id)
		r := p.Map(id)
		p.StartRead(r) // register as a sharer
		p.EndRead(r)
		p.Barrier(sp)
		for i := 1; i <= 50; i++ {
			if p.ID() == 0 {
				p.StartWrite(r)
				r.Data.SetInt64(0, int64(i))
				p.EndWrite(r)
			}
			p.Barrier(sp)
			p.StartRead(r)
			if got := r.Data.Int64(0); got != int64(i) {
				return fmt.Errorf("proc %d: iteration %d read %d", p.ID(), i, got)
			}
			p.EndRead(r)
			p.Barrier(sp)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cl.Metrics()
	fmt.Printf("50 producer-consumer iterations over TCP: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("traffic: %d messages, %d bytes — all over real sockets\n", m.Net.MsgsSent, m.Net.BytesSent)
}
